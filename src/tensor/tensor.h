// A small dense float tensor.
//
// Contiguous, row-major, value-semantic. Shapes are vectors of dimensions;
// rank 0 is disallowed (use a rank-1 tensor of size 1 for scalars). All
// layers in src/nn operate on batch-first tensors: [N, D] for vector data and
// [N, C, H, W] for image data.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace cip {

using Shape = std::vector<std::size_t>;

/// Total number of elements of a shape.
std::size_t NumElements(const Shape& shape);

/// Human-readable shape, e.g. "[32, 3, 12, 12]".
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (rank 1, size 0). Useful as a placeholder.
  Tensor() : shape_{0} {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {
    CIP_CHECK(!shape_.empty());
  }

  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)), data_(NumElements(shape_), fill) {
    CIP_CHECK(!shape_.empty());
  }

  /// Takes ownership of `data`; size must match the shape.
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    CIP_CHECK(!shape_.empty());
    CIP_CHECK_EQ(data_.size(), NumElements(shape_));
  }

  /// Convenience for tests: rank-1 tensor from a list.
  static Tensor FromList(std::initializer_list<float> values) {
    return Tensor({values.size()}, std::vector<float>(values));
  }

  const Shape& shape() const { return shape_; }
  /// Number of dimensions (always >= 1).
  std::size_t rank() const { return shape_.size(); }
  /// Total element count (product of all dimensions).
  std::size_t size() const { return data_.size(); }
  /// Extent of dimension `i`; checks i < rank().
  std::size_t dim(std::size_t i) const {
    CIP_CHECK_LT(i, shape_.size());
    return shape_[i];
  }

  /// Raw contiguous row-major storage; valid until the tensor is resized.
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  /// Whole storage as a span (same lifetime caveats as data()).
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  /// Const overload of flat().
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  // Element access is the hottest path in the library; bounds checks are
  // debug-tier (on in Debug and sanitizer presets, compiled out in Release).
  float& operator[](std::size_t i) {
    CIP_DCHECK_LT(i, data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    CIP_DCHECK_LT(i, data_.size());
    return data_[i];
  }

  /// 2-D element access (row-major). Only valid for rank-2 tensors.
  float& At(std::size_t r, std::size_t c) {
    CIP_DCHECK_EQ(rank(), 2u);
    CIP_DCHECK_LT(r, shape_[0]);
    CIP_DCHECK_LT(c, shape_[1]);
    return data_[r * shape_[1] + c];
  }
  /// Const overload of At(r, c).
  float At(std::size_t r, std::size_t c) const {
    return const_cast<Tensor*>(this)->At(r, c);
  }

  /// Reinterpret with a new shape of equal element count.
  Tensor Reshaped(Shape new_shape) const {
    CIP_CHECK_EQ(NumElements(new_shape), size());
    return Tensor(std::move(new_shape), data_);
  }

  /// Row `i` of a rank>=2 tensor viewed as [dim0, rest]: copies the slice
  /// into a tensor of shape shape()[1..].
  Tensor Row(std::size_t i) const;

  /// Batch slice [lo, hi) along dim 0 (copying).
  Tensor Slice(std::size_t lo, std::size_t hi) const;

  /// Set every element to `v`.
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  /// Set every element to zero (shape unchanged).
  void Zero() { Fill(0.0f); }

  /// True iff shapes are identical (same rank and extents).
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace cip
