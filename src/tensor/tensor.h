// A small dense float tensor.
//
// Contiguous, row-major, value-semantic. Shapes are vectors of dimensions;
// rank 0 is disallowed (use a rank-1 tensor of size 1 for scalars). All
// layers in src/nn operate on batch-first tensors: [N, D] for vector data and
// [N, C, H, W] for image data.
//
// Every tensor carries a per-object modification counter (version()): any
// non-const access that could mutate elements bumps it. Layers use it to
// invalidate caches derived from a tensor's contents (e.g. the pre-packed
// GEMM panels of a weight matrix) without rescanning the data. The counter
// is monotonic per object; it deliberately over-counts (a non-const data()
// that never writes still bumps) — consumers only rely on "unchanged version
// implies unchanged contents".
//
// The counter is deliberately NOT synchronized: bumping it from concurrent
// threads is a data race even when the element writes themselves are
// disjoint. Parallel writers to a shared tensor must therefore hoist a
// single non-const data()/flat() call out of the parallel region and share
// the raw pointer (see the ops::Im2ColInto / ops::Col2ImInto raw-pointer
// overloads for the idiom).
//
// internal::TensorAllocCount() counts element-buffer allocations process-wide
// so tests can assert that steady-state hot paths stop allocating (see
// tests/test_alloc_free.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace cip {

using Shape = std::vector<std::size_t>;

/// Total number of elements of a shape.
std::size_t NumElements(const Shape& shape);

/// Human-readable shape, e.g. "[32, 3, 12, 12]".
std::string ShapeToString(const Shape& shape);

namespace internal {

/// Process-wide count of tensor element-buffer allocations (constructions
/// and capacity-growing assignments). Monotonic; tests snapshot it around a
/// steady-state region and assert the delta. Thread-safe.
std::uint64_t TensorAllocCount();

/// Bump TensorAllocCount(). Called by Tensor's allocating paths only.
void BumpTensorAllocCount();

}  // namespace internal

class Tensor {
 public:
  /// Empty tensor (rank 1, size 0). Useful as a placeholder.
  Tensor() : shape_{0} {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {
    CIP_CHECK(!shape_.empty());
    if (!data_.empty()) internal::BumpTensorAllocCount();
  }

  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)), data_(NumElements(shape_), fill) {
    CIP_CHECK(!shape_.empty());
    if (!data_.empty()) internal::BumpTensorAllocCount();
  }

  /// Takes ownership of `data`; size must match the shape.
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    CIP_CHECK(!shape_.empty());
    CIP_CHECK_EQ(data_.size(), NumElements(shape_));
  }

  Tensor(const Tensor& o) : shape_(o.shape_), data_(o.data_) {
    if (!data_.empty()) internal::BumpTensorAllocCount();
  }

  Tensor(Tensor&& o) noexcept = default;

  /// Copy assignment reuses existing capacity when it fits; the version is
  /// always bumped (contents may have changed).
  Tensor& operator=(const Tensor& o) {
    if (this != &o) {
      if (o.data_.size() > data_.capacity() && !o.data_.empty()) {
        internal::BumpTensorAllocCount();
      }
      shape_ = o.shape_;
      data_ = o.data_;
      ++version_;
    }
    return *this;
  }

  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      shape_ = std::move(o.shape_);
      data_ = std::move(o.data_);
      ++version_;
    }
    return *this;
  }

  /// Convenience for tests: rank-1 tensor from a list.
  static Tensor FromList(std::initializer_list<float> values) {
    return Tensor({values.size()}, std::vector<float>(values));
  }

  const Shape& shape() const { return shape_; }
  /// Number of dimensions (always >= 1).
  std::size_t rank() const { return shape_.size(); }
  /// Total element count (product of all dimensions).
  std::size_t size() const { return data_.size(); }
  /// Extent of dimension `i`; checks i < rank().
  std::size_t dim(std::size_t i) const {
    CIP_CHECK_LT(i, shape_.size());
    return shape_[i];
  }

  /// Modification counter: bumped by every access that may mutate elements.
  /// Unchanged version implies unchanged contents (the converse need not
  /// hold). Monotonic per object; not meaningful across objects.
  std::uint64_t version() const { return version_; }

  /// Raw contiguous row-major storage; valid until the tensor is resized.
  float* data() {
    ++version_;
    return data_.data();
  }
  const float* data() const { return data_.data(); }
  /// Whole storage as a span (same lifetime caveats as data()).
  std::span<float> flat() {
    ++version_;
    return {data_.data(), data_.size()};
  }
  /// Const overload of flat().
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  // Element access is the hottest path in the library; bounds checks are
  // debug-tier (on in Debug and sanitizer presets, compiled out in Release).
  float& operator[](std::size_t i) {
    CIP_DCHECK_LT(i, data_.size());
    ++version_;
    return data_[i];
  }
  float operator[](std::size_t i) const {
    CIP_DCHECK_LT(i, data_.size());
    return data_[i];
  }

  /// 2-D element access (row-major). Only valid for rank-2 tensors.
  float& At(std::size_t r, std::size_t c) {
    CIP_DCHECK_EQ(rank(), 2u);
    CIP_DCHECK_LT(r, shape_[0]);
    CIP_DCHECK_LT(c, shape_[1]);
    ++version_;
    return data_[r * shape_[1] + c];
  }
  /// Const overload of At(r, c).
  float At(std::size_t r, std::size_t c) const {
    CIP_DCHECK_EQ(rank(), 2u);
    CIP_DCHECK_LT(r, shape_[0]);
    CIP_DCHECK_LT(c, shape_[1]);
    return data_[r * shape_[1] + c];
  }

  /// Reinterpret with a new shape of equal element count.
  Tensor Reshaped(Shape new_shape) const {
    CIP_CHECK_EQ(NumElements(new_shape), size());
    return Tensor(std::move(new_shape), data_);
  }

  /// Row `i` of a rank>=2 tensor viewed as [dim0, rest]: copies the slice
  /// into a tensor of shape shape()[1..].
  Tensor Row(std::size_t i) const;

  /// Batch slice [lo, hi) along dim 0 (copying).
  Tensor Slice(std::size_t lo, std::size_t hi) const;

  /// Reshape in place, reusing the element buffer's capacity: counts as an
  /// allocation only when the new element count exceeds the current
  /// capacity. Contents are unspecified after a size change (new elements
  /// are zero, surviving prefix elements keep their values); the version is
  /// bumped unconditionally. This is what lets a shrink-then-grow cycle
  /// (e.g. a serving arena sized per batch) stay allocation-free.
  void Resize(Shape shape) {
    CIP_CHECK(!shape.empty());
    const std::size_t n = NumElements(shape);
    if (n > data_.capacity()) internal::BumpTensorAllocCount();
    // CIP_ANALYZE_OK(hot-alloc-container): the sanctioned grow-once primitive — reuses capacity once warm; hot-path steady state is pinned dynamically by tests/test_alloc_free.cpp
    data_.resize(n);
    shape_ = std::move(shape);
    ++version_;
  }

  /// Set every element to `v`.
  void Fill(float v) {
    ++version_;
    std::fill(data_.begin(), data_.end(), v);
  }
  /// Set every element to zero (shape unchanged).
  void Zero() { Fill(0.0f); }

  /// True iff shapes are identical (same rank and extents).
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
  std::uint64_t version_ = 0;
};

/// Reshape `t` only when the wanted shape differs — the scratch-reuse idiom
/// that keeps steady-state hot paths allocation-free (grow once, reuse
/// forever). Built on Tensor::Resize, so a shape change that fits in the
/// existing capacity reuses the buffer instead of reallocating; only growth
/// past capacity counts as an allocation. Contents are unspecified after a
/// reshape; unchanged otherwise.
inline void EnsureShape(Tensor& t, Shape shape) {
  if (t.shape() != shape) t.Resize(std::move(shape));
}

}  // namespace cip
