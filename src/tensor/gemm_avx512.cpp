// AVX-512F GEMM microkernel: 16-lane × 8-row register tile.
//
// Tile shape: 8 rows × 16 columns = eight ZMM accumulators plus one ZMM B
// load and one broadcast — 10 of the 32 architectural ZMM registers. Eight
// independent accumulator chains cover the FMA latency×throughput product on
// every AVX-512 part with 512-bit units; the narrow register footprint leaves
// the compiler room to hoist A-row pointers. Panels are kNR = 16 floats wide
// (one full ZMM), the same panel layout the AVX2 kernel uses, so the two SIMD
// kernels share packed buffers at equal nr.
//
// This TU is compiled with -mavx512f when the compiler supports it (see
// src/tensor/CMakeLists.txt); the dispatcher only binds this kernel when the
// runtime probe reports OS-enabled ZMM state. Without compiler support the
// getter returns nullptr and the registry falls back.

#include <cstddef>

#include "tensor/gemm_kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>

namespace cip::ops {
namespace {

constexpr std::size_t kMR = 8;    // register-tile rows
constexpr std::size_t kNR = 16;   // register-tile columns (one ZMM)
constexpr std::size_t kKC = 256;  // k-block: panel slice stays in L1
constexpr std::size_t kMC = 32;   // rows per parallel chunk (4 micro-tiles)

// CIP_HOT  (AVX-512 GEMM microkernel: row-range body under ParallelForCoarse)
void Avx512GemmRows(const float* a, std::size_t k, std::size_t n,
                    const float* packed, float* c, std::size_t i_lo,
                    std::size_t i_hi) {
  const std::size_t panels = (n + kNR - 1) / kNR;
  for (std::size_t i = i_lo; i < i_hi; i += kMR) {
    const std::size_t mr = std::min(kMR, i_hi - i);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const std::size_t j0 = jp * kNR;
      const std::size_t jn = std::min(kNR, n - j0);
      const float* panel = packed + jp * k * kNR;
      if (mr == kMR) {
        __m512 acc[kMR];
        for (std::size_t r = 0; r < kMR; ++r) acc[r] = _mm512_setzero_ps();
        for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
          const std::size_t p1 = std::min(k, p0 + kKC);
          const float* bp = panel + p0 * kNR;
          for (std::size_t p = p0; p < p1; ++p, bp += kNR) {
            const __m512 bv = _mm512_loadu_ps(bp);
            for (std::size_t r = 0; r < kMR; ++r) {
              const __m512 av = _mm512_set1_ps(a[(i + r) * k + p]);
              acc[r] = _mm512_fmadd_ps(av, bv, acc[r]);
            }
          }
        }
        if (jn == kNR) {
          for (std::size_t r = 0; r < kMR; ++r) {
            _mm512_storeu_ps(c + (i + r) * n + j0, acc[r]);
          }
        } else {
          const __mmask16 mask =
              static_cast<__mmask16>((1u << jn) - 1u);
          for (std::size_t r = 0; r < kMR; ++r) {
            _mm512_mask_storeu_ps(c + (i + r) * n + j0, mask, acc[r]);
          }
        }
        continue;
      }
      // Tail rows (m % kMR): same ascending-p accumulation order, one ZMM
      // per row, so tail rows stay bit-stable across row partitions too.
      const __mmask16 mask = jn == kNR
                                 ? static_cast<__mmask16>(0xFFFF)
                                 : static_cast<__mmask16>((1u << jn) - 1u);
      for (std::size_t r = 0; r < mr; ++r) {
        __m512 acc = _mm512_setzero_ps();
        const float* arow = a + (i + r) * k;
        const float* bp = panel;
        for (std::size_t p = 0; p < k; ++p, bp += kNR) {
          acc = _mm512_fmadd_ps(_mm512_set1_ps(arow[p]), _mm512_loadu_ps(bp),
                                acc);
        }
        _mm512_mask_storeu_ps(c + (i + r) * n + j0, mask, acc);
      }
    }
  }
}

constexpr GemmKernel kAvx512Kernel = {
    IsaLevel::kAvx512, "avx512", kMR, kNR, kMC, &Avx512GemmRows,
};

}  // namespace

namespace internal {

const GemmKernel* Avx512GemmKernel() { return &kAvx512Kernel; }

}  // namespace internal

}  // namespace cip::ops

#else  // !__AVX512F__

namespace cip::ops::internal {

const GemmKernel* Avx512GemmKernel() { return nullptr; }

}  // namespace cip::ops::internal

#endif
