// Free-function tensor operations.
//
// Conventions: functions ending in `Into` write to an output tensor that must
// already have the right shape; value-returning variants allocate. Matmul
// shapes follow BLAS: A is [m, k], B is [k, n], C is [m, n].
#pragma once

#include <span>

#include "common/cpu_features.h"
#include "tensor/tensor.h"

namespace cip::ops {

// ---- elementwise ----------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
/// a - b, elementwise; shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);
/// a * b, elementwise (Hadamard product); shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);
/// s * a, elementwise.
Tensor Scale(const Tensor& a, float s);

/// a += b, elementwise; shapes must match.
void AddInPlace(Tensor& a, const Tensor& b);
/// a += s * b  (axpy)
void Axpy(Tensor& a, float s, const Tensor& b);
/// a *= s, elementwise.
void ScaleInPlace(Tensor& a, float s);
/// Clamp every element into [lo, hi].
void ClipInPlace(Tensor& a, float lo, float hi);
/// mask[i] = 1 if a[i] strictly inside (lo, hi) else 0 — the derivative mask
/// of clipping (boundary treated as saturated).
Tensor ClipMask(const Tensor& a, float lo, float hi);
/// Elementwise sign (-1, 0, +1).
Tensor Sign(const Tensor& a);

// ---- reductions -----------------------------------------------------------

float SumAll(const Tensor& a);
/// Mean over all elements; the tensor must be non-empty.
float MeanAll(const Tensor& a);
/// Sum of absolute values over all elements.
float L1Norm(const Tensor& a);
/// Euclidean norm over all elements (sqrt of sum of squares).
float L2Norm(const Tensor& a);
/// Maximum element; the tensor must be non-empty.
float MaxAll(const Tensor& a);
/// Inner product of the flattened tensors; sizes must match.
float Dot(const Tensor& a, const Tensor& b);

/// Column-wise sum of a [m, n] matrix -> [n].
Tensor SumRows(const Tensor& a);

/// out += column-wise sums of a [m, n] matrix. out must be a preallocated
/// [n] tensor (accumulating, allocation-free variant of SumRows for reused
/// gradient buffers).
void SumRowsAccumInto(const Tensor& a, Tensor& out);

// ---- linear algebra --------------------------------------------------------
//
// All matmuls run a cache-blocked kernel: B is packed into contiguous
// column panels once, then the i (rows of C), k (depth), and j (columns of C)
// loops are tiled so each panel stays L1/L2-resident while a small register
// tile of C accumulates. The register microkernel is chosen per process by a
// runtime ISA dispatch (portable GNU-vector 4x8, AVX2/FMA 6x16, AVX-512F
// 8x16 — see gemm_kernels.h, docs/KERNELS.md, and the CIP_ISA override in
// common/env.h). Work is split across ParallelFor by row blocks, so every
// output element is written by exactly one thread.
//
// Determinism is per-ISA: within one bound ISA, results are bit-identical
// across thread counts and dispatch backends (row partitions never move a
// micro-tile boundary, and every element accumulates in ascending-k order).
// Across ISAs, results differ by normal float rounding (FMA contracts the
// multiply-add, wider tiles round the same sums through the same order but
// different contraction) — bounded against a sequential double-accumulated
// reference by k · ulp, which the parity tests pin per ISA.
//
// `Into` variants write to a caller-owned output (callers reuse scratch
// across training steps to avoid per-call allocation). The output must
// already have the result shape and must not alias either input.

/// C = A · B. A: [m,k], B: [k,n]. Returns a newly allocated [m,n] tensor.
Tensor Matmul(const Tensor& a, const Tensor& b);
/// C = A · Bᵀ. A: [m,k], B: [n,k]. Returns [m,n].
Tensor MatmulTransB(const Tensor& a, const Tensor& b);
/// C = Aᵀ · B. A: [k,m], B: [k,n]. Returns [m,n].
Tensor MatmulTransA(const Tensor& a, const Tensor& b);

/// C = A · B into a preallocated [m,n] tensor (overwritten, no aliasing).
void MatmulInto(const Tensor& a, const Tensor& b, Tensor& c);
/// C = A · Bᵀ into a preallocated [m,n] tensor (overwritten, no aliasing).
void MatmulTransBInto(const Tensor& a, const Tensor& b, Tensor& c);
/// C = Aᵀ · B into a preallocated [m,n] tensor (overwritten, no aliasing).
void MatmulTransAInto(const Tensor& a, const Tensor& b, Tensor& c);

// ---- weight prepacking -----------------------------------------------------
//
// Every blocked matmul first repacks B into nr-wide column panels, where nr
// is the panel width of the ISA microkernel bound for this process. When the
// same B is multiplied repeatedly without changing (a frozen weight matrix
// across an eval sweep, the whole batch of an im2col GEMM), the packing pass
// can be hoisted out and paid once. Layers cache a PackedB next to the
// weight and invalidate it via Tensor::version() *and* via isa() against
// ActiveGemmIsa(), since the panel layout is an ISA property.

/// IsaLevel of the GEMM microkernel bound for this process (binds on first
/// use; see gemm_kernels.h). PackedB caches key on this: a packing built
/// under one ISA must not be fed to another ISA's kernel.
IsaLevel ActiveGemmIsa();

/// Pre-packed right-hand side of a GEMM. Opaque storage produced by the
/// PackBFor* functions below; reusable (and reused, capacity kept) across
/// repacks. A default-constructed PackedB is empty(). The panel layout is
/// specific to the ISA that was bound when packing ran — MatmulPackedInto
/// rejects a stale layout, and callers invalidate via isa().
class PackedB {
 public:
  /// True until one of the PackBFor*Into functions has filled this object.
  bool empty() const { return k_ == 0; }
  /// Depth (rows of the logical B) this packing was built for.
  std::size_t k() const { return k_; }
  /// Columns of the logical B (columns of the product).
  std::size_t n() const { return n_; }
  /// ISA whose panel layout this packing uses. Meaningless while empty().
  IsaLevel isa() const { return isa_; }

 private:
  friend void PackBForMatmulInto(const Tensor& b, PackedB& out);
  friend void PackBForMatmulTransBInto(const Tensor& b, PackedB& out);
  friend void MatmulPackedInto(const Tensor& a, const PackedB& b, Tensor& c);

  std::vector<float> panels_;
  std::size_t k_ = 0;
  std::size_t n_ = 0;
  std::size_t nr_ = 0;  // panel width the panels_ layout was built with
  IsaLevel isa_ = IsaLevel::kPortable;
};

/// Pack B ([k, n], Matmul orientation) into `out`, reusing its storage.
void PackBForMatmulInto(const Tensor& b, PackedB& out);
/// Pack B ([n, k] row-major, MatmulTransB orientation: C = A · Bᵀ) into
/// `out`, reusing its storage.
void PackBForMatmulTransBInto(const Tensor& b, PackedB& out);
/// C = A · B against a pre-packed B. A: [m, b.k()], C: [m, b.n()]
/// (preallocated, overwritten, no aliasing). Always runs the cache-blocked
/// kernel and is bit-identical to the blocked path of MatmulInto /
/// MatmulTransBInto under the same bound ISA; callers use
/// internal::UsesBlockedGemm to keep small products on the cheaper streaming
/// loops. CIP_CHECK-fails if b was packed under a different panel layout
/// than the bound kernel's (repack when isa() != ActiveGemmIsa()).
void MatmulPackedInto(const Tensor& a, const PackedB& b, Tensor& c);

namespace internal {

/// True when Matmul*Into for these dimensions takes the cache-blocked packed
/// kernel; below the threshold the plain streaming loops win and a PackedB
/// cache does not pay off. Layers consult this to decide whether to maintain
/// a prepacked weight.
bool UsesBlockedGemm(std::size_t m, std::size_t k, std::size_t n);

/// Capacity in bytes of the calling thread's GEMM scratch arena (packing +
/// transpose buffers, grow-once / reuse-forever). Test hook: stable across
/// calls once warmed up.
std::size_t GemmArenaBytes();

/// Number of panel-packing passes the calling thread has executed. Test
/// hook: stays flat across repeated calls when a PackedB cache hits.
std::uint64_t PackCount();

}  // namespace internal

// ---- convolution lowering (im2col / col2im) --------------------------------
//
// The conv2d hot path lowers convolution to GEMM: Im2Col unrolls each
// receptive field of an NCHW sample into one row of a column matrix, the
// convolution becomes `col · Wᵀ`, and Col2Im scatters the column-matrix
// gradient back to image layout. See docs/ARCHITECTURE.md ("GEMM path").

/// Static geometry of a 2-D convolution over NCHW tensors with symmetric
/// zero padding. `kernel` must satisfy `kernel <= height + 2*pad` (same for
/// width) and `stride >= 1`.
struct Conv2dGeom {
  std::size_t in_channels = 0;
  std::size_t height = 0;  ///< input H
  std::size_t width = 0;   ///< input W
  std::size_t kernel = 0;  ///< square kernel extent K
  std::size_t stride = 1;
  std::size_t pad = 0;

  /// Output height: (H + 2·pad − K)/stride + 1.
  std::size_t OutH() const { return (height + 2 * pad - kernel) / stride + 1; }
  /// Output width: (W + 2·pad − K)/stride + 1.
  std::size_t OutW() const { return (width + 2 * pad - kernel) / stride + 1; }
  /// Receptive-field size C·K·K — the column count of the im2col matrix and
  /// the row length of a conv weight matrix [OC, C·K·K].
  std::size_t PatchSize() const { return in_channels * kernel * kernel; }
};

/// Raw-pointer core of Im2ColInto: lower one C·H·W sample at `x_sample`
/// into `col_rows`, OutH·OutW consecutive rows of PatchSize() floats each
/// (layout as documented on the Tensor overload). This is the overload to
/// call from inside a parallel region: it takes pre-hoisted pointers, so
/// concurrent per-sample calls never touch a shared Tensor's non-const
/// accessors (whose version bump is an unsynchronized write, see tensor.h).
/// `col_rows` must not alias `x_sample`.
void Im2ColInto(const float* x_sample, const Conv2dGeom& g, float* col_rows);

/// Lower sample `n_index` of an NCHW tensor `x` into rows
/// [row_offset, row_offset + OutH·OutW) of `col`, a matrix with
/// PatchSize() columns. Row (oy·OutW + ox) holds the receptive field of
/// output position (oy, ox) in C-major, then ky, then kx order; out-of-image
/// taps are written as 0. Every addressed element of `col` is overwritten.
/// NOT safe to call concurrently on a shared `col` even for disjoint row
/// ranges — each call bumps col's version counter unsynchronized; parallel
/// callers hoist col.data() once and use the raw-pointer overload instead.
/// `col` must not alias `x`.
void Im2ColInto(const Tensor& x, std::size_t n_index, const Conv2dGeom& g,
                Tensor& col, std::size_t row_offset = 0);

/// Allocating convenience wrapper: the [OutH·OutW, PatchSize()] im2col
/// matrix of one sample.
Tensor Im2Col(const Tensor& x, std::size_t n_index, const Conv2dGeom& g);

/// Raw-pointer core of Col2ImInto: scatter-add OutH·OutW rows at `col_rows`
/// into one C·H·W sample at `dx_sample` (accumulating — the caller zeroes
/// first). Like the Im2ColInto raw overload, this is the form for parallel
/// regions: pointers are hoisted by the caller, so concurrent per-sample
/// calls perform no shared version-counter writes. Pointers must not alias.
void Col2ImInto(const float* col_rows, const Conv2dGeom& g, float* dx_sample);

/// Adjoint of Im2ColInto: scatter-add rows [row_offset, row_offset+OutH·OutW)
/// of `col` back into sample `n_index` of the NCHW tensor `dx` (accumulating,
/// so `dx` must be zeroed by the caller first). Overlapping receptive fields
/// sum, which is exactly d(loss)/d(input) of the lowered convolution. NOT
/// safe to call concurrently on a shared `dx` (unsynchronized version bump,
/// as with Im2ColInto) — parallel callers hoist dx.data() once and use the
/// raw-pointer overload. `col` must not alias `dx`.
void Col2ImInto(const Tensor& col, std::size_t row_offset, const Conv2dGeom& g,
                Tensor& dx, std::size_t n_index);

// ---- softmax family --------------------------------------------------------

/// Row-wise softmax of a [n, c] matrix.
Tensor SoftmaxRows(const Tensor& logits);
/// Row-wise log-softmax of a [n, c] matrix.
Tensor LogSoftmaxRows(const Tensor& logits);

/// Mean cross-entropy of row-wise logits against integer labels, plus the
/// gradient w.r.t. logits (dL/dlogits for the *mean* loss) if grad != nullptr.
float SoftmaxCrossEntropy(const Tensor& logits, std::span<const int> labels,
                          Tensor* grad);

/// Per-sample cross-entropy losses (no reduction).
std::vector<float> PerSampleCrossEntropy(const Tensor& logits,
                                         std::span<const int> labels);

/// Row-wise argmax of a [n, c] matrix.
std::vector<int> ArgmaxRows(const Tensor& scores);

/// Backprop through a row-wise softmax: given probs p = softmax(logits) and
/// upstream dL/dp, returns dL/dlogits = p ⊙ (dp − ⟨dp, p⟩) per row.
Tensor SoftmaxBackwardRows(const Tensor& probs, const Tensor& dprobs);

}  // namespace cip::ops
