// Free-function tensor operations.
//
// Conventions: functions ending in `Into` write to an output tensor that must
// already have the right shape; value-returning variants allocate. Matmul
// shapes follow BLAS: A is [m, k], B is [k, n], C is [m, n].
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace cip::ops {

// ---- elementwise ----------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);

void AddInPlace(Tensor& a, const Tensor& b);
/// a += s * b  (axpy)
void Axpy(Tensor& a, float s, const Tensor& b);
void ScaleInPlace(Tensor& a, float s);
/// Clamp every element into [lo, hi].
void ClipInPlace(Tensor& a, float lo, float hi);
/// mask[i] = 1 if a[i] strictly inside (lo, hi) else 0 — the derivative mask
/// of clipping (boundary treated as saturated).
Tensor ClipMask(const Tensor& a, float lo, float hi);
/// Elementwise sign (-1, 0, +1).
Tensor Sign(const Tensor& a);

// ---- reductions -----------------------------------------------------------

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float L1Norm(const Tensor& a);
float L2Norm(const Tensor& a);
float MaxAll(const Tensor& a);
float Dot(const Tensor& a, const Tensor& b);

/// Column-wise sum of a [m, n] matrix -> [n].
Tensor SumRows(const Tensor& a);

// ---- linear algebra --------------------------------------------------------

/// C = A · B. A: [m,k], B: [k,n].
Tensor Matmul(const Tensor& a, const Tensor& b);
/// C = A · Bᵀ. A: [m,k], B: [n,k].
Tensor MatmulTransB(const Tensor& a, const Tensor& b);
/// C = Aᵀ · B. A: [k,m], B: [k,n].
Tensor MatmulTransA(const Tensor& a, const Tensor& b);

// ---- softmax family --------------------------------------------------------

/// Row-wise softmax of a [n, c] matrix.
Tensor SoftmaxRows(const Tensor& logits);
/// Row-wise log-softmax of a [n, c] matrix.
Tensor LogSoftmaxRows(const Tensor& logits);

/// Mean cross-entropy of row-wise logits against integer labels, plus the
/// gradient w.r.t. logits (dL/dlogits for the *mean* loss) if grad != nullptr.
float SoftmaxCrossEntropy(const Tensor& logits, std::span<const int> labels,
                          Tensor* grad);

/// Per-sample cross-entropy losses (no reduction).
std::vector<float> PerSampleCrossEntropy(const Tensor& logits,
                                         std::span<const int> labels);

/// Row-wise argmax of a [n, c] matrix.
std::vector<int> ArgmaxRows(const Tensor& scores);

/// Backprop through a row-wise softmax: given probs p = softmax(logits) and
/// upstream dL/dp, returns dL/dlogits = p ⊙ (dp − ⟨dp, p⟩) per row.
Tensor SoftmaxBackwardRows(const Tensor& probs, const Tensor& dprobs);

}  // namespace cip::ops
