// AVX2 + FMA GEMM microkernel: 6x16 register tile.
//
// Tile shape: 6 rows × 16 columns = twelve YMM accumulators, two YMM B loads,
// and one broadcast register — 15 of the 16 architectural YMM registers, the
// classic FMA-unit-saturating shape for 256-bit x86 (2 FMA ports × 5-cycle
// latency needs ≥10 independent accumulator chains; 12 clears that with both
// B vectors reused across all six rows). Panels are kNR = 16 floats wide, so
// one packed panel row feeds exactly one (b0, b1) load pair.
//
// This TU is compiled with -mavx2 -mfma when the compiler supports them (see
// src/tensor/CMakeLists.txt); the dispatcher only binds this kernel when the
// runtime probe says the host can execute it. Without compiler support the
// getter returns nullptr and the registry falls back.

#include <cstddef>

#include "tensor/gemm_kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace cip::ops {
namespace {

constexpr std::size_t kMR = 6;    // register-tile rows
constexpr std::size_t kNR = 16;   // register-tile columns (two YMM)
constexpr std::size_t kKC = 256;  // k-block: panel slice stays in L1
constexpr std::size_t kMC = 24;   // rows per parallel chunk (4 micro-tiles)

// CIP_HOT  (AVX2 GEMM microkernel: row-range body under ParallelForCoarse)
void Avx2GemmRows(const float* a, std::size_t k, std::size_t n,
                  const float* packed, float* c, std::size_t i_lo,
                  std::size_t i_hi) {
  const std::size_t panels = (n + kNR - 1) / kNR;
  for (std::size_t i = i_lo; i < i_hi; i += kMR) {
    const std::size_t mr = std::min(kMR, i_hi - i);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const std::size_t j0 = jp * kNR;
      const std::size_t jn = std::min(kNR, n - j0);
      const float* panel = packed + jp * k * kNR;
      if (mr == kMR) {
        // Named accumulators, not __m256 arrays: GCC's allocator reliably
        // keeps named values in registers, while an indexed array of vectors
        // tends to live on the stack even after full unrolling, re-adding the
        // store-forwarding chain the tile exists to avoid.
        const float* a0 = a + (i + 0) * k;
        const float* a1 = a + (i + 1) * k;
        const float* a2 = a + (i + 2) * k;
        const float* a3 = a + (i + 3) * k;
        const float* a4 = a + (i + 4) * k;
        const float* a5 = a + (i + 5) * k;
        __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
        __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
        __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
        __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
        __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
        __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
        for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
          const std::size_t p1 = std::min(k, p0 + kKC);
          const float* bp = panel + p0 * kNR;
          for (std::size_t p = p0; p < p1; ++p, bp += kNR) {
            const __m256 b0 = _mm256_loadu_ps(bp);
            const __m256 b1 = _mm256_loadu_ps(bp + 8);
            __m256 av = _mm256_broadcast_ss(a0 + p);
            c00 = _mm256_fmadd_ps(av, b0, c00);
            c01 = _mm256_fmadd_ps(av, b1, c01);
            av = _mm256_broadcast_ss(a1 + p);
            c10 = _mm256_fmadd_ps(av, b0, c10);
            c11 = _mm256_fmadd_ps(av, b1, c11);
            av = _mm256_broadcast_ss(a2 + p);
            c20 = _mm256_fmadd_ps(av, b0, c20);
            c21 = _mm256_fmadd_ps(av, b1, c21);
            av = _mm256_broadcast_ss(a3 + p);
            c30 = _mm256_fmadd_ps(av, b0, c30);
            c31 = _mm256_fmadd_ps(av, b1, c31);
            av = _mm256_broadcast_ss(a4 + p);
            c40 = _mm256_fmadd_ps(av, b0, c40);
            c41 = _mm256_fmadd_ps(av, b1, c41);
            av = _mm256_broadcast_ss(a5 + p);
            c50 = _mm256_fmadd_ps(av, b0, c50);
            c51 = _mm256_fmadd_ps(av, b1, c51);
          }
        }
        const __m256 lo[kMR] = {c00, c10, c20, c30, c40, c50};
        const __m256 hi[kMR] = {c01, c11, c21, c31, c41, c51};
        if (jn == kNR) {
          for (std::size_t r = 0; r < kMR; ++r) {
            float* crow = c + (i + r) * n + j0;
            _mm256_storeu_ps(crow, lo[r]);
            _mm256_storeu_ps(crow + 8, hi[r]);
          }
        } else {
          for (std::size_t r = 0; r < kMR; ++r) {
            float tmp[kNR];
            _mm256_storeu_ps(tmp, lo[r]);
            _mm256_storeu_ps(tmp + 8, hi[r]);
            float* crow = c + (i + r) * n + j0;
            for (std::size_t jj = 0; jj < jn; ++jj) crow[jj] = tmp[jj];
          }
        }
        continue;
      }
      // Tail rows (m % kMR): same ascending-p accumulation order, one YMM
      // pair per row, so tail rows stay bit-stable across row partitions too.
      for (std::size_t r = 0; r < mr; ++r) {
        __m256 tl = _mm256_setzero_ps();
        __m256 th = _mm256_setzero_ps();
        const float* arow = a + (i + r) * k;
        const float* bp = panel;
        for (std::size_t p = 0; p < k; ++p, bp += kNR) {
          const __m256 av = _mm256_broadcast_ss(arow + p);
          tl = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), tl);
          th = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp + 8), th);
        }
        float tmp[kNR];
        _mm256_storeu_ps(tmp, tl);
        _mm256_storeu_ps(tmp + 8, th);
        float* crow = c + (i + r) * n + j0;
        for (std::size_t jj = 0; jj < jn; ++jj) crow[jj] = tmp[jj];
      }
    }
  }
}

constexpr GemmKernel kAvx2Kernel = {
    IsaLevel::kAvx2, "avx2", kMR, kNR, kMC, &Avx2GemmRows,
};

}  // namespace

namespace internal {

const GemmKernel* Avx2GemmKernel() { return &kAvx2Kernel; }

}  // namespace internal

}  // namespace cip::ops

#else  // !(__AVX2__ && __FMA__)

namespace cip::ops::internal {

const GemmKernel* Avx2GemmKernel() { return nullptr; }

}  // namespace cip::ops::internal

#endif
