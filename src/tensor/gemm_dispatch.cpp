// GEMM kernel registry: resolve CIP_ISA × CPU probe × compiled kernels once,
// publish the winner through a lock-free atomic. See gemm_kernels.h for the
// contract and docs/KERNELS.md for the full dispatch flow.

#include <atomic>
#include <cstdint>

#include "common/cpu_features.h"
#include "common/env.h"
#include "tensor/gemm_kernels.h"
#include "tensor/ops.h"

namespace cip::ops {
namespace {

// nullptr until the first ActiveGemmKernel() call; then a pointer to one of
// the immortal per-TU kernel descriptors. Plain atomics instead of a mutex:
// the thread-include lint confines <mutex> to parallel.cpp, and a CAS on an
// immortal pointer is all the synchronization binding needs.
std::atomic<const GemmKernel*> g_bound{nullptr};
std::atomic<std::uint64_t> g_bind_count{0};

// Highest kernel ≤ `want` that both the host supports and this binary
// contains. Monotone fallback: avx512 → avx2 → portable.
const GemmKernel* Resolve(IsaLevel want) {
  const CpuFeatures& f = GetCpuFeatures();
  if (static_cast<int>(want) >= static_cast<int>(IsaLevel::kAvx512) &&
      IsaSupported(IsaLevel::kAvx512, f)) {
    if (const GemmKernel* k = internal::Avx512GemmKernel()) return k;
  }
  if (static_cast<int>(want) >= static_cast<int>(IsaLevel::kAvx2) &&
      IsaSupported(IsaLevel::kAvx2, f)) {
    if (const GemmKernel* k = internal::Avx2GemmKernel()) return k;
  }
  return &internal::PortableGemmKernel();
}

IsaLevel WantedLevel() {
  switch (IsaRequested()) {
    case IsaRequest::kPortable:
      return IsaLevel::kPortable;
    case IsaRequest::kAvx2:
      return IsaLevel::kAvx2;
    case IsaRequest::kAvx512:
      return IsaLevel::kAvx512;
    case IsaRequest::kAuto:
      break;
  }
  return BestSupportedIsa();
}

}  // namespace

const GemmKernel& ActiveGemmKernel() {
  const GemmKernel* bound = g_bound.load(std::memory_order_acquire);
  if (bound == nullptr) {
    const GemmKernel* resolved = Resolve(WantedLevel());
    const GemmKernel* expected = nullptr;
    if (g_bound.compare_exchange_strong(expected, resolved,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      g_bind_count.fetch_add(1, std::memory_order_relaxed);
      bound = resolved;
    } else {
      bound = expected;  // another thread won the race; use its binding
    }
  }
  return *bound;
}

IsaLevel ActiveGemmIsa() { return ActiveGemmKernel().isa; }

namespace internal {

std::uint64_t GemmBindCount() {
  return g_bind_count.load(std::memory_order_relaxed);
}

void ResetGemmBindingForTesting() {
  g_bound.store(nullptr, std::memory_order_release);
}

}  // namespace internal

}  // namespace cip::ops
