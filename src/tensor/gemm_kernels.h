// GEMM microkernel registry: one descriptor per compiled ISA, bound once.
//
// Every blocked matmul in ops.cpp drives the same macro-structure — pack B
// into nr-wide column panels, block rows into mc-row parallel chunks, run a
// register microkernel over each chunk — but the microkernel itself is
// ISA-specific and lives in its own translation unit compiled with the right
// target flags (gemm_portable.cpp / gemm_avx2.cpp / gemm_avx512.cpp, the only
// TUs allowed to include <immintrin.h>). ActiveGemmKernel() binds the best
// kernel the host supports (or what CIP_ISA forces) on first use, atomically,
// and never rebinds for the life of the process. docs/KERNELS.md documents
// the tile shapes, packing layout, and how to add a new ISA.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"

namespace cip::ops {

/// Computes rows [i_lo, i_hi) of C = A · B_packed. `a` is row-major [m, k]
/// (only rows [i_lo, i_hi) are read), `packed` holds ceil(n / nr) zero-padded
/// column panels of B laid out as packed[panel·k·nr + p·nr + jj], and `c` is
/// row-major [m, n]. Must write each output element exactly once and
/// accumulate strictly in ascending-p order per element, so results are
/// bit-identical however the caller partitions rows (see docs/KERNELS.md,
/// determinism policy).
using GemmRowsFn = void (*)(const float* a, std::size_t k, std::size_t n,
                            const float* packed, float* c, std::size_t i_lo,
                            std::size_t i_hi);

/// One ISA's microkernel plus the blocking geometry the shared driver and
/// packing code must use with it. Descriptors are immortal statics defined in
/// their kernel TU; the registry hands out pointers to them.
struct GemmKernel {
  IsaLevel isa = IsaLevel::kPortable;  ///< ISA this kernel requires.
  const char* name = "";               ///< IsaName(isa), for logs and JSON.
  std::size_t mr = 0;  ///< register-tile rows per microkernel invocation
  std::size_t nr = 0;  ///< panel width = register-tile columns
  std::size_t mc = 0;  ///< rows per parallel chunk; always a multiple of mr
  GemmRowsFn gemm_rows = nullptr;  ///< the row-range kernel itself
};

/// The kernel this process runs GEMMs with. First call resolves CIP_ISA
/// against the probed CpuFeatures and the kernels compiled into this binary
/// (requests above what the host/binary supports clamp down; portable always
/// exists), then binds via an atomic compare-exchange — exactly one winner,
/// no rebinding. Thread-safe and lock-free.
const GemmKernel& ActiveGemmKernel();

namespace internal {

/// The GNU-vector portable kernel (4x8 tile). Always available; the registry
/// falls back to it when nothing better is compiled in or supported.
const GemmKernel& PortableGemmKernel();

/// The AVX2+FMA kernel (6x16 tile), or nullptr when this binary was compiled
/// without AVX2 support.
const GemmKernel* Avx2GemmKernel();

/// The AVX-512F kernel (8x16 tile), or nullptr when this binary was compiled
/// without AVX-512 support.
const GemmKernel* Avx512GemmKernel();

/// Number of successful registry bindings since process start. 1 after any
/// GEMM has run; the bind-once stress test checks it stays 1 under
/// ParallelFor pressure.
std::uint64_t GemmBindCount();

/// Unbind the registry so the next ActiveGemmKernel() call resolves afresh.
/// Pair with env::internal::SetIsaRequestForTesting to flip ISAs in-process.
/// Only safe when no GEMM is concurrently running; any PackedB built before
/// the reset must be repacked (callers key their caches on ActiveGemmIsa()).
/// For dispatcher tests and per-ISA benches only.
void ResetGemmBindingForTesting();

}  // namespace internal

}  // namespace cip::ops
