// Portable GEMM microkernel: 4x8 register tile via GNU vector extensions.
//
// This is the original blocked kernel from the pre-dispatch ops.cpp, kept
// verbatim as the guaranteed-available fallback (and as the `CIP_ISA=portable`
// reference the parity reruns in scripts/check.sh pin the SIMD kernels
// against). It assumes nothing beyond a C++20 compiler; the vector extension
// lowers to SSE pairs or scalars as the baseline target allows.

#include <algorithm>
#include <cstddef>

#include "tensor/gemm_kernels.h"

namespace cip::ops {
namespace {

constexpr std::size_t kMR = 4;    // register-tile rows
constexpr std::size_t kNR = 8;    // register-tile columns (two SSE lanes)
constexpr std::size_t kKC = 256;  // k-block: panel slice stays in L1
// i-block: unit of parallel work. Small enough that a 64-row GEMM still
// yields several chunks for the pool (panel reuse happens per kMR-row
// micro-tile, so shrinking the i-block does not hurt cache behavior).
constexpr std::size_t kMC = 16;

// The register tile must actually live in registers: a plain float[4][8]
// local tends to be left in memory by the compiler, turning every
// accumulation into a load→add→store chain whose store-forwarding latency
// caps the kernel near 1 MAC/cycle. GCC/Clang vector extensions give the
// tile as eight named vector values (lowered to SSE pairs, or AVX when the
// target allows) with a portable scalar fallback elsewhere.
#if defined(__GNUC__) || defined(__clang__)
#define CIP_GEMM_VECTOR_KERNEL 1
// The helpers pass 32-byte vectors by value, which GCC flags with -Wpsabi on
// non-AVX targets; every call is inlined inside this TU, so no cross-object
// ABI boundary ever sees a vector argument (-Wno-psabi is set for cip_tensor
// in src/tensor/CMakeLists.txt).
// aligned(4): panel/C pointers are only float-aligned; loads must not assume
// the natural 32-byte vector alignment.
typedef float Vec8 __attribute__((vector_size(32), aligned(4)));
static_assert(sizeof(Vec8) == kNR * sizeof(float));

inline Vec8 Splat8(float v) { return Vec8{v, v, v, v, v, v, v, v}; }

inline Vec8 Load8(const float* p) {
  Vec8 out;
  __builtin_memcpy(&out, p, sizeof out);
  return out;
}

inline void Store8(float* p, Vec8 v) { __builtin_memcpy(p, &v, sizeof v); }
#endif

// CIP_HOT  (portable GEMM microkernel: row-range body under ParallelForCoarse)
void PortableGemmRows(const float* a, std::size_t k, std::size_t n,
                      const float* packed, float* c, std::size_t i_lo,
                      std::size_t i_hi) {
  const std::size_t panels = (n + kNR - 1) / kNR;
  for (std::size_t i = i_lo; i < i_hi; i += kMR) {
    const std::size_t mr = std::min(kMR, i_hi - i);
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const std::size_t j0 = jp * kNR;
      const std::size_t jn = std::min(kNR, n - j0);
      const float* panel = packed + jp * k * kNR;
#if CIP_GEMM_VECTOR_KERNEL
      if (mr == kMR) {
        const float* a0 = a + (i + 0) * k;
        const float* a1 = a + (i + 1) * k;
        const float* a2 = a + (i + 2) * k;
        const float* a3 = a + (i + 3) * k;
        Vec8 acc0{}, acc1{}, acc2{}, acc3{};
        for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
          const std::size_t p1 = std::min(k, p0 + kKC);
          const float* bp = panel + p0 * kNR;
          for (std::size_t p = p0; p < p1; ++p, bp += kNR) {
            const Vec8 bv = Load8(bp);
            acc0 += Splat8(a0[p]) * bv;
            acc1 += Splat8(a1[p]) * bv;
            acc2 += Splat8(a2[p]) * bv;
            acc3 += Splat8(a3[p]) * bv;
          }
        }
        if (jn == kNR) {
          Store8(c + (i + 0) * n + j0, acc0);
          Store8(c + (i + 1) * n + j0, acc1);
          Store8(c + (i + 2) * n + j0, acc2);
          Store8(c + (i + 3) * n + j0, acc3);
        } else {
          const Vec8 accs[kMR] = {acc0, acc1, acc2, acc3};
          for (std::size_t r = 0; r < kMR; ++r) {
            float tmp[kNR];
            Store8(tmp, accs[r]);
            float* crow = c + (i + r) * n + j0;
            for (std::size_t jj = 0; jj < jn; ++jj) crow[jj] = tmp[jj];
          }
        }
        continue;
      }
#endif
      // Tail rows (m % kMR) and non-vector builds.
      float acc[kMR][kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const float* bp = panel + p * kNR;
        for (std::size_t r = 0; r < mr; ++r) {
          const float av = a[(i + r) * k + p];
          for (std::size_t jj = 0; jj < kNR; ++jj) {
            acc[r][jj] += av * bp[jj];
          }
        }
      }
      for (std::size_t r = 0; r < mr; ++r) {
        float* crow = c + (i + r) * n + j0;
        for (std::size_t jj = 0; jj < jn; ++jj) crow[jj] = acc[r][jj];
      }
    }
  }
}

constexpr GemmKernel kPortableKernel = {
    IsaLevel::kPortable, "portable", kMR, kNR, kMC, &PortableGemmRows,
};

}  // namespace

namespace internal {

const GemmKernel& PortableGemmKernel() { return kPortableKernel; }

}  // namespace internal

}  // namespace cip::ops
