#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace cip::ops {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  CIP_CHECK_MSG(a.SameShape(b), "shape mismatch: " << ShapeToString(a.shape())
                                                   << " vs "
                                                   << ShapeToString(b.shape()));
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void AddInPlace(Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void Axpy(Tensor& a, float s, const Tensor& b) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += s * pb[i];
}

void ScaleInPlace(Tensor& a, float s) {
  for (float& x : a.flat()) x *= s;
}

void ClipInPlace(Tensor& a, float lo, float hi) {
  CIP_CHECK_LE(lo, hi);
  for (float& x : a.flat()) x = std::clamp(x, lo, hi);
}

Tensor ClipMask(const Tensor& a, float lo, float hi) {
  CIP_CHECK_LE(lo, hi);
  Tensor mask(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    mask[i] = (a[i] > lo && a[i] < hi) ? 1.0f : 0.0f;
  }
  return mask;
}

Tensor Sign(const Tensor& a) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (a[i] > 0.0f) ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  }
  return out;
}

float SumAll(const Tensor& a) {
  double s = 0.0;
  for (float x : a.flat()) s += x;
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  CIP_CHECK_GT(a.size(), 0u);
  return SumAll(a) / static_cast<float>(a.size());
}

float L1Norm(const Tensor& a) {
  double s = 0.0;
  for (float x : a.flat()) s += std::abs(x);
  return static_cast<float>(s);
}

float L2Norm(const Tensor& a) {
  double s = 0.0;
  for (float x : a.flat()) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

float MaxAll(const Tensor& a) {
  CIP_CHECK_GT(a.size(), 0u);
  float m = a[0];
  for (float x : a.flat()) m = std::max(m, x);
  return m;
}

float Dot(const Tensor& a, const Tensor& b) {
  CIP_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) s += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(s);
}

Tensor SumRows(const Tensor& a) {
  CIP_CHECK_EQ(a.rank(), 2u);
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  const float* pa = a.data();
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) out[c] += pa[r * n + c];
  }
  return out;
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CIP_CHECK_EQ(b.dim(0), k);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelFor(0, m, [&](std::size_t i) {
    float* crow = pc + i * n;
    const float* arow = pa + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CIP_CHECK_EQ(b.dim(1), k);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelFor(0, m, [&](std::size_t i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(s);
    }
  });
  return c;
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  CIP_CHECK_EQ(b.dim(0), k);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // c[i,j] = sum_p a[p,i] * b[p,j]; accumulate row by row for locality.
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor SoftmaxRows(const Tensor& logits) {
  CIP_CHECK_EQ(logits.rank(), 2u);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CIP_DCHECK_GT(c, 0u);  // row[0] read below
  Tensor out(logits.shape());
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor LogSoftmaxRows(const Tensor& logits) {
  CIP_CHECK_EQ(logits.rank(), 2u);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CIP_DCHECK_GT(c, 0u);  // row[0] read below
  Tensor out(logits.shape());
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
    const float lse = mx + static_cast<float>(std::log(denom));
    for (std::size_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
  }
  return out;
}

float SoftmaxCrossEntropy(const Tensor& logits, std::span<const int> labels,
                          Tensor* grad) {
  CIP_CHECK_EQ(logits.rank(), 2u);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CIP_CHECK_EQ(labels.size(), n);
  const Tensor log_probs = LogSoftmaxRows(logits);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    CIP_CHECK_GE(y, 0);
    CIP_CHECK_LT(static_cast<std::size_t>(y), c);
    loss -= log_probs[i * c + static_cast<std::size_t>(y)];
  }
  loss /= static_cast<double>(n);
  if (grad != nullptr) {
    *grad = Tensor(logits.shape());
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        float p = std::exp(log_probs[i * c + j]);
        (*grad)[i * c + j] =
            (p - (static_cast<std::size_t>(labels[i]) == j ? 1.0f : 0.0f)) *
            inv_n;
      }
    }
  }
  return static_cast<float>(loss);
}

std::vector<float> PerSampleCrossEntropy(const Tensor& logits,
                                         std::span<const int> labels) {
  CIP_CHECK_EQ(logits.rank(), 2u);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CIP_CHECK_EQ(labels.size(), n);
  const Tensor log_probs = LogSoftmaxRows(logits);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    CIP_CHECK_GE(y, 0);
    CIP_CHECK_LT(static_cast<std::size_t>(y), c);
    out[i] = -log_probs[i * c + static_cast<std::size_t>(y)];
  }
  return out;
}

Tensor SoftmaxBackwardRows(const Tensor& probs, const Tensor& dprobs) {
  CIP_CHECK_EQ(probs.rank(), 2u);
  CIP_DCHECK_GT(probs.dim(1), 0u);
  CIP_CHECK(probs.SameShape(dprobs));
  const std::size_t n = probs.dim(0), c = probs.dim(1);
  Tensor out(probs.shape());
  for (std::size_t i = 0; i < n; ++i) {
    const float* p = probs.data() + i * c;
    const float* dp = dprobs.data() + i * c;
    double dot = 0.0;
    for (std::size_t j = 0; j < c; ++j) dot += static_cast<double>(dp[j]) * p[j];
    float* o = out.data() + i * c;
    for (std::size_t j = 0; j < c; ++j) {
      o[j] = p[j] * (dp[j] - static_cast<float>(dot));
    }
  }
  return out;
}

std::vector<int> ArgmaxRows(const Tensor& scores) {
  CIP_CHECK_EQ(scores.rank(), 2u);
  const std::size_t n = scores.dim(0), c = scores.dim(1);
  CIP_DCHECK_GT(c, 0u);  // row[0] read below
  std::vector<int> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = scores.data() + i * c;
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

}  // namespace cip::ops
