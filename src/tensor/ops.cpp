#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "tensor/gemm_kernels.h"

namespace cip::ops {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  CIP_CHECK_MSG(a.SameShape(b), "shape mismatch: " << ShapeToString(a.shape())
                                                   << " vs "
                                                   << ShapeToString(b.shape()));
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

// CIP_HOT  (aggregation inner loop)
void AddInPlace(Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void Axpy(Tensor& a, float s, const Tensor& b) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += s * pb[i];
}

void ScaleInPlace(Tensor& a, float s) {
  for (float& x : a.flat()) x *= s;
}

void ClipInPlace(Tensor& a, float lo, float hi) {
  CIP_CHECK_LE(lo, hi);
  for (float& x : a.flat()) x = std::clamp(x, lo, hi);
}

Tensor ClipMask(const Tensor& a, float lo, float hi) {
  CIP_CHECK_LE(lo, hi);
  Tensor mask(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    mask[i] = (a[i] > lo && a[i] < hi) ? 1.0f : 0.0f;
  }
  return mask;
}

Tensor Sign(const Tensor& a) {
  Tensor out(a.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (a[i] > 0.0f) ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  }
  return out;
}

float SumAll(const Tensor& a) {
  double s = 0.0;
  for (float x : a.flat()) s += x;
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  CIP_CHECK_GT(a.size(), 0u);
  return SumAll(a) / static_cast<float>(a.size());
}

float L1Norm(const Tensor& a) {
  double s = 0.0;
  for (float x : a.flat()) s += std::abs(x);
  return static_cast<float>(s);
}

float L2Norm(const Tensor& a) {
  double s = 0.0;
  for (float x : a.flat()) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

float MaxAll(const Tensor& a) {
  CIP_CHECK_GT(a.size(), 0u);
  float m = a[0];
  for (float x : a.flat()) m = std::max(m, x);
  return m;
}

float Dot(const Tensor& a, const Tensor& b) {
  CIP_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) s += static_cast<double>(pa[i]) * pb[i];
  return static_cast<float>(s);
}

Tensor SumRows(const Tensor& a) {
  CIP_CHECK_EQ(a.rank(), 2u);
  Tensor out({a.dim(1)});
  SumRowsAccumInto(a, out);
  return out;
}

// CIP_HOT  (bias-gradient reduction inside Linear/Conv backward)
void SumRowsAccumInto(const Tensor& a, Tensor& out) {
  CIP_CHECK_EQ(a.rank(), 2u);
  const std::size_t m = a.dim(0), n = a.dim(1);
  CIP_CHECK_EQ(out.size(), n);
  const float* pa = a.data();
  float* po = out.data();
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) po[c] += pa[r * n + c];
  }
}

namespace {

// --- cache-blocked GEMM core -----------------------------------------------
//
// One macro-structure serves Matmul (B row-major [k,n]) and MatmulTransB (B
// row-major [n,k]): B is first repacked into column panels of width nr —
// packed[panel][p][jj] = B(p, panel*nr + jj) — so the micro-kernel streams
// contiguous memory regardless of B's original layout. The driver then tiles
// i into blocks of mc rows (parallelized across threads: each thread owns
// disjoint rows of C) and hands each row block to the ISA microkernel bound
// by ActiveGemmKernel(), which tiles k (so a panel slice stays cache-hot) and
// j panel by panel around an mr × nr register tile. Tile shapes (mr/nr/mc)
// are per-ISA properties of the bound kernel — see gemm_kernels.h and
// docs/KERNELS.md.
//
// Below this flop count the packing pass costs more than it saves; use the
// plain row-streaming loops instead.
constexpr std::size_t kBlockedMinFlops = 16 * 1024;
// Below this flop count even the pool's dispatch latency exceeds the kernel
// time; run the row blocks serially on the caller. 64x64x64 is the smallest
// size that dispatches.
constexpr std::size_t kParallelMinFlops = 256 * 1024;

std::size_t NumPanels(std::size_t n, std::size_t nr) {
  return (n + nr - 1) / nr;
}

// Per-thread scratch for the packing and transpose passes: grow-once,
// reuse-forever, so steady-state GEMMs perform no heap allocation. Pool
// worker threads are persistent, so their arenas amortize the same way the
// caller's does. The pack counter feeds the PackCount() test hook.
struct GemmArena {
  std::vector<float> packed;      // panel storage for per-call packing
  std::vector<float> transposed;  // A-transpose staging for MatmulTransAInto
  std::uint64_t packs = 0;
};

GemmArena& LocalArena() {
  thread_local GemmArena arena;
  return arena;
}

/// Pack B into zero-padded nr-wide column panels (nr = the bound kernel's
/// panel width). `trans == false`: B is [k, n] and B(p, j) = b[p*n + j];
/// `trans == true`: B is [n, k] and B(p, j) = b[j*k + p].
void PackPanels(const float* b, std::size_t k, std::size_t n, bool trans,
                std::size_t nr, std::vector<float>& packed) {
  ++LocalArena().packs;
  const std::size_t panels = NumPanels(n, nr);
  // CIP_ANALYZE_OK(hot-alloc-container): thread-local arena: assign reuses capacity once grown (PackCount tests)
  packed.assign(panels * k * nr, 0.0f);
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const std::size_t j0 = jp * nr;
    const std::size_t jn = std::min(nr, n - j0);
    float* dst = packed.data() + jp * k * nr;
    if (!trans) {
      for (std::size_t p = 0; p < k; ++p) {
        const float* src = b + p * n + j0;
        for (std::size_t jj = 0; jj < jn; ++jj) dst[p * nr + jj] = src[jj];
      }
    } else {
      for (std::size_t jj = 0; jj < jn; ++jj) {
        const float* src = b + (j0 + jj) * k;
        for (std::size_t p = 0; p < k; ++p) dst[p * nr + jj] = src[p];
      }
    }
  }
}

/// C[m,n] = A[m,k] · B where B is pre-packed into `kernel.nr`-wide panels.
/// Overwrites C. Row blocks of kernel.mc rows go through the worker pool when
/// the product is large enough to amortize dispatch; the block partition
/// (hence every output value) is independent of the thread budget either way,
/// and kernel.mc is a multiple of kernel.mr, so micro-tile boundaries land on
/// the same rows no matter how blocks are distributed.
void GemmPacked(const GemmKernel& kernel, const float* a, std::size_t m,
                std::size_t k, std::size_t n, const float* packed, float* c) {
  const std::size_t mc = kernel.mc;
  const GemmRowsFn gemm_rows = kernel.gemm_rows;
  const std::size_t row_blocks = (m + mc - 1) / mc;
  const auto run_block = [&](std::size_t ib) {
    const std::size_t i_lo = ib * mc;
    const std::size_t i_hi = std::min(m, i_lo + mc);
    gemm_rows(a, k, n, packed, c, i_lo, i_hi);
  };
  if (m * n * k >= kParallelMinFlops && row_blocks > 1) {
    ParallelForCoarse(0, row_blocks, run_block);
  } else {
    for (std::size_t ib = 0; ib < row_blocks; ++ib) run_block(ib);
  }
}

/// Plain row-streaming C = A·B for sizes where packing does not pay off.
void SimpleMatmulInto(const float* pa, std::size_t m, std::size_t k,
                      std::size_t n, const float* pb, float* pc) {
  std::fill(pc, pc + m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    const float* arow = pa + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Plain dot-product C = A·Bᵀ for small sizes.
void SimpleMatmulTransBInto(const float* pa, std::size_t m, std::size_t k,
                            std::size_t n, const float* pb, float* pc) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float s = 0.0f;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
}

void CheckMatmulOut(const Tensor& c, std::size_t m, std::size_t n) {
  CIP_CHECK_EQ(c.rank(), 2u);
  CIP_CHECK_EQ(c.dim(0), m);
  CIP_CHECK_EQ(c.dim(1), n);
}

}  // namespace

namespace internal {

bool UsesBlockedGemm(std::size_t m, std::size_t k, std::size_t n) {
  return m * n * k >= kBlockedMinFlops;
}

std::size_t GemmArenaBytes() {
  const GemmArena& arena = LocalArena();
  return (arena.packed.capacity() + arena.transposed.capacity()) *
         sizeof(float);
}

std::uint64_t PackCount() { return LocalArena().packs; }

}  // namespace internal

// CIP_HOT  (GEMM entry: Linear/Conv forward+backward)
void MatmulInto(const Tensor& a, const Tensor& b, Tensor& c) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CIP_CHECK_EQ(b.dim(0), k);
  CheckMatmulOut(c, m, n);
  if (!internal::UsesBlockedGemm(m, k, n)) {
    SimpleMatmulInto(a.data(), m, k, n, b.data(), c.data());
    return;
  }
  const GemmKernel& kernel = ActiveGemmKernel();
  std::vector<float>& packed = LocalArena().packed;
  PackPanels(b.data(), k, n, /*trans=*/false, kernel.nr, packed);
  GemmPacked(kernel, a.data(), m, k, n, packed.data(), c.data());
}

// CIP_HOT  (GEMM entry: d(in) = d(out) * W)
void MatmulTransBInto(const Tensor& a, const Tensor& b, Tensor& c) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CIP_CHECK_EQ(b.dim(1), k);
  CheckMatmulOut(c, m, n);
  if (!internal::UsesBlockedGemm(m, k, n)) {
    SimpleMatmulTransBInto(a.data(), m, k, n, b.data(), c.data());
    return;
  }
  const GemmKernel& kernel = ActiveGemmKernel();
  std::vector<float>& packed = LocalArena().packed;
  PackPanels(b.data(), k, n, /*trans=*/true, kernel.nr, packed);
  GemmPacked(kernel, a.data(), m, k, n, packed.data(), c.data());
}

void PackBForMatmulInto(const Tensor& b, PackedB& out) {
  CIP_CHECK_EQ(b.rank(), 2u);
  const GemmKernel& kernel = ActiveGemmKernel();
  out.k_ = b.dim(0);
  out.n_ = b.dim(1);
  out.nr_ = kernel.nr;
  out.isa_ = kernel.isa;
  PackPanels(b.data(), out.k_, out.n_, /*trans=*/false, kernel.nr,
             out.panels_);
}

void PackBForMatmulTransBInto(const Tensor& b, PackedB& out) {
  CIP_CHECK_EQ(b.rank(), 2u);
  const GemmKernel& kernel = ActiveGemmKernel();
  out.k_ = b.dim(1);
  out.n_ = b.dim(0);
  out.nr_ = kernel.nr;
  out.isa_ = kernel.isa;
  PackPanels(b.data(), out.k_, out.n_, /*trans=*/true, kernel.nr,
             out.panels_);
}

// CIP_HOT  (GEMM entry over pre-packed weights: eval forward)
void MatmulPackedInto(const Tensor& a, const PackedB& b, Tensor& c) {
  CIP_CHECK(!b.empty());
  CIP_CHECK_EQ(a.rank(), 2u);
  const std::size_t m = a.dim(0);
  CIP_CHECK_EQ(a.dim(1), b.k());
  CheckMatmulOut(c, m, b.n());
  const GemmKernel& kernel = ActiveGemmKernel();
  CIP_CHECK_MSG(b.nr_ == kernel.nr,
                "PackedB layout (nr=" << b.nr_ << ", isa=" << IsaName(b.isa())
                                      << ") does not match the bound GEMM "
                                         "kernel (nr="
                                      << kernel.nr << ", isa=" << kernel.name
                                      << "); repack after an ISA change");
  GemmPacked(kernel, a.data(), m, b.k(), b.n(), b.panels_.data(), c.data());
}

// CIP_HOT  (GEMM entry: dW = x^T * d(out))
void MatmulTransAInto(const Tensor& a, const Tensor& b, Tensor& c) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  CIP_CHECK_EQ(b.dim(0), k);
  CheckMatmulOut(c, m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (m * n * k < kBlockedMinFlops) {
    // c[i,j] = sum_p a[p,i] * b[p,j]; accumulate row by row for locality.
    std::fill(pc, pc + m * n, 0.0f);
    for (std::size_t p = 0; p < k; ++p) {
      const float* arow = pa + p * m;
      const float* brow = pb + p * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }
  // Transpose A once (O(k·m), trivial next to the O(m·n·k) GEMM) so the
  // blocked kernel reads rows contiguously. Staged in the thread-local arena
  // so repeated calls stop allocating once the buffers have grown.
  GemmArena& arena = LocalArena();
  std::vector<float>& at = arena.transposed;
  // CIP_ANALYZE_OK(hot-alloc-container): grow-once arena transpose staging, guarded by the size check above
  if (at.size() < m * k) at.resize(m * k);
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    for (std::size_t i = 0; i < m; ++i) at[i * k + p] = arow[i];
  }
  const GemmKernel& kernel = ActiveGemmKernel();
  PackPanels(pb, k, n, /*trans=*/false, kernel.nr, arena.packed);
  GemmPacked(kernel, at.data(), m, k, n, arena.packed.data(), pc);
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  Tensor c({a.dim(0), b.dim(1)});
  MatmulInto(a, b, c);
  return c;
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  Tensor c({a.dim(0), b.dim(0)});
  MatmulTransBInto(a, b, c);
  return c;
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  Tensor c({a.dim(1), b.dim(1)});
  MatmulTransAInto(a, b, c);
  return c;
}

namespace {

void CheckGeom(const Conv2dGeom& g) {
  CIP_CHECK_GT(g.in_channels, 0u);
  CIP_CHECK_GT(g.kernel, 0u);
  CIP_CHECK_GT(g.stride, 0u);
  CIP_CHECK_GE(g.height + 2 * g.pad, g.kernel);
  CIP_CHECK_GE(g.width + 2 * g.pad, g.kernel);
}

}  // namespace

// CIP_HOT  (per-sample im2col body, runs inside ParallelFor)
void Im2ColInto(const float* x_sample, const Conv2dGeom& g, float* col_rows) {
  CheckGeom(g);
  const std::size_t h = g.height, w = g.width, k = g.kernel;
  const std::size_t oh = g.OutH(), ow = g.OutW();
  const std::size_t cols = g.PatchSize();
  const float* px = x_sample;
  float* pc = col_rows;
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      float* crow = pc + (oy * ow + ox) * cols;
      for (std::size_t c = 0; c < g.in_channels; ++c) {
        for (std::size_t ky = 0; ky < k; ++ky) {
          const long iy =
              static_cast<long>(oy * g.stride + ky) - static_cast<long>(g.pad);
          // Whole kernel row in one go when it is fully inside the image —
          // the common interior case — with the zero-padding boundary handled
          // tap by tap otherwise.
          float* drow = crow + c * k * k + ky * k;
          if (iy < 0 || iy >= static_cast<long>(h)) {
            for (std::size_t kx = 0; kx < k; ++kx) drow[kx] = 0.0f;
            continue;
          }
          const float* srow =
              px + c * h * w + static_cast<std::size_t>(iy) * w;
          for (std::size_t kx = 0; kx < k; ++kx) {
            const long ix = static_cast<long>(ox * g.stride + kx) -
                            static_cast<long>(g.pad);
            drow[kx] = (ix >= 0 && ix < static_cast<long>(w))
                           ? srow[static_cast<std::size_t>(ix)]
                           : 0.0f;
          }
        }
      }
    }
  }
}

void Im2ColInto(const Tensor& x, std::size_t n_index, const Conv2dGeom& g,
                Tensor& col, std::size_t row_offset) {
  CheckGeom(g);
  CIP_DCHECK_EQ(x.rank(), 4u);
  CIP_DCHECK_LT(n_index, x.dim(0));
  CIP_DCHECK_EQ(x.dim(1), g.in_channels);
  CIP_DCHECK_EQ(x.dim(2), g.height);
  CIP_DCHECK_EQ(x.dim(3), g.width);
  CIP_DCHECK_EQ(col.rank(), 2u);
  CIP_DCHECK_EQ(col.dim(1), g.PatchSize());
  CIP_DCHECK_LE(row_offset + g.OutH() * g.OutW(), col.dim(0));
  Im2ColInto(
      x.data() + n_index * g.in_channels * g.height * g.width, g,
      col.data() + row_offset * g.PatchSize());
}

Tensor Im2Col(const Tensor& x, std::size_t n_index, const Conv2dGeom& g) {
  CheckGeom(g);
  Tensor col({g.OutH() * g.OutW(), g.PatchSize()});
  Im2ColInto(x, n_index, g, col, 0);
  return col;
}

// CIP_HOT  (per-sample col2im body, runs inside ParallelFor)
void Col2ImInto(const float* col_rows, const Conv2dGeom& g, float* dx_sample) {
  CheckGeom(g);
  const std::size_t h = g.height, w = g.width, k = g.kernel;
  const std::size_t oh = g.OutH(), ow = g.OutW();
  const std::size_t cols = g.PatchSize();
  float* px = dx_sample;
  const float* pc = col_rows;
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      const float* crow = pc + (oy * ow + ox) * cols;
      for (std::size_t c = 0; c < g.in_channels; ++c) {
        for (std::size_t ky = 0; ky < k; ++ky) {
          const long iy =
              static_cast<long>(oy * g.stride + ky) - static_cast<long>(g.pad);
          if (iy < 0 || iy >= static_cast<long>(h)) continue;
          float* drow = px + c * h * w + static_cast<std::size_t>(iy) * w;
          const float* srow = crow + c * k * k + ky * k;
          for (std::size_t kx = 0; kx < k; ++kx) {
            const long ix = static_cast<long>(ox * g.stride + kx) -
                            static_cast<long>(g.pad);
            if (ix < 0 || ix >= static_cast<long>(w)) continue;
            drow[static_cast<std::size_t>(ix)] += srow[kx];
          }
        }
      }
    }
  }
}

void Col2ImInto(const Tensor& col, std::size_t row_offset, const Conv2dGeom& g,
                Tensor& dx, std::size_t n_index) {
  CheckGeom(g);
  CIP_DCHECK_EQ(col.rank(), 2u);
  CIP_DCHECK_EQ(col.dim(1), g.PatchSize());
  CIP_DCHECK_LE(row_offset + g.OutH() * g.OutW(), col.dim(0));
  CIP_DCHECK_EQ(dx.rank(), 4u);
  CIP_DCHECK_LT(n_index, dx.dim(0));
  CIP_DCHECK_EQ(dx.dim(1), g.in_channels);
  CIP_DCHECK_EQ(dx.dim(2), g.height);
  CIP_DCHECK_EQ(dx.dim(3), g.width);
  Col2ImInto(
      col.data() + row_offset * g.PatchSize(), g,
      dx.data() + n_index * g.in_channels * g.height * g.width);
}

Tensor SoftmaxRows(const Tensor& logits) {
  CIP_CHECK_EQ(logits.rank(), 2u);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CIP_DCHECK_GT(c, 0u);  // row[0] read below
  Tensor out(logits.shape());
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor LogSoftmaxRows(const Tensor& logits) {
  CIP_CHECK_EQ(logits.rank(), 2u);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CIP_DCHECK_GT(c, 0u);  // row[0] read below
  Tensor out(logits.shape());
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
    const float lse = mx + static_cast<float>(std::log(denom));
    for (std::size_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
  }
  return out;
}

float SoftmaxCrossEntropy(const Tensor& logits, std::span<const int> labels,
                          Tensor* grad) {
  CIP_CHECK_EQ(logits.rank(), 2u);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CIP_CHECK_EQ(labels.size(), n);
  const Tensor log_probs = LogSoftmaxRows(logits);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    CIP_CHECK_GE(y, 0);
    CIP_CHECK_LT(static_cast<std::size_t>(y), c);
    loss -= log_probs[i * c + static_cast<std::size_t>(y)];
  }
  loss /= static_cast<double>(n);
  if (grad != nullptr) {
    *grad = Tensor(logits.shape());
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        float p = std::exp(log_probs[i * c + j]);
        (*grad)[i * c + j] =
            (p - (static_cast<std::size_t>(labels[i]) == j ? 1.0f : 0.0f)) *
            inv_n;
      }
    }
  }
  return static_cast<float>(loss);
}

std::vector<float> PerSampleCrossEntropy(const Tensor& logits,
                                         std::span<const int> labels) {
  CIP_CHECK_EQ(logits.rank(), 2u);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CIP_CHECK_EQ(labels.size(), n);
  const Tensor log_probs = LogSoftmaxRows(logits);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    CIP_CHECK_GE(y, 0);
    CIP_CHECK_LT(static_cast<std::size_t>(y), c);
    out[i] = -log_probs[i * c + static_cast<std::size_t>(y)];
  }
  return out;
}

Tensor SoftmaxBackwardRows(const Tensor& probs, const Tensor& dprobs) {
  CIP_CHECK_EQ(probs.rank(), 2u);
  CIP_DCHECK_GT(probs.dim(1), 0u);
  CIP_CHECK(probs.SameShape(dprobs));
  const std::size_t n = probs.dim(0), c = probs.dim(1);
  Tensor out(probs.shape());
  for (std::size_t i = 0; i < n; ++i) {
    const float* p = probs.data() + i * c;
    const float* dp = dprobs.data() + i * c;
    double dot = 0.0;
    for (std::size_t j = 0; j < c; ++j) dot += static_cast<double>(dp[j]) * p[j];
    float* o = out.data() + i * c;
    for (std::size_t j = 0; j < c; ++j) {
      o[j] = p[j] * (dp[j] - static_cast<float>(dot));
    }
  }
  return out;
}

std::vector<int> ArgmaxRows(const Tensor& scores) {
  CIP_CHECK_EQ(scores.rank(), 2u);
  const std::size_t n = scores.dim(0), c = scores.dim(1);
  CIP_DCHECK_GT(c, 0u);  // row[0] read below
  std::vector<int> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = scores.data() + i * c;
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

}  // namespace cip::ops
