// Optimizers over nn::Parameter sets.
//
// Optimizers hold per-parameter state keyed by position, so the parameter
// list passed to Step must be the same (same order, same shapes) on every
// call — which is how models expose parameters in this library.
#pragma once

#include <span>
#include <vector>

#include "nn/module.h"

namespace cip::optim {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then zero them.
  virtual void Step(std::span<nn::Parameter* const> params) = 0;

  virtual void set_lr(float lr) = 0;
  virtual float lr() const = 0;

  /// Snapshot the optimizer's cross-step state (momentum buffers, moment
  /// estimates, …) as a flat tensor list for checkpoint/resume. The layout is
  /// implementation-defined but stable: RestoreState on a freshly constructed
  /// optimizer of the same kind and hyperparameters reproduces subsequent
  /// Step results bit-identically. Stateless optimizers return {}.
  virtual std::vector<Tensor> ExportState() const { return {}; }

  /// Install a snapshot produced by ExportState on the same optimizer kind.
  /// Throws CheckError if the snapshot layout does not match. The default
  /// accepts only an empty snapshot (stateless optimizers).
  virtual void RestoreState(std::vector<Tensor> state);
};

/// SGD with optional momentum, decoupled weight decay, and global-norm
/// gradient clipping (clip_norm = 0 disables; clipping stabilizes small
/// non-i.i.d. federated runs against bad-init plateaus).
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f, float weight_decay = 0.0f,
               float clip_norm = 0.0f);

  void Step(std::span<nn::Parameter* const> params) override;
  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

  /// Snapshot: one velocity tensor per parameter (empty before the first
  /// momentum Step or when momentum is 0).
  std::vector<Tensor> ExportState() const override { return velocity_; }
  /// Install velocity tensors exported from an equally configured Sgd.
  void RestoreState(std::vector<Tensor> state) override;

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  float clip_norm_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f);

  void Step(std::span<nn::Parameter* const> params) override;
  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

  /// Snapshot layout: a shape-{1} step counter, then the first- and
  /// second-moment tensors interleaved per parameter (m0, v0, m1, v1, …).
  std::vector<Tensor> ExportState() const override;
  /// Install a snapshot exported from an equally configured Adam.
  void RestoreState(std::vector<Tensor> state) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  long step_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Piecewise-constant decay: lr = base * factor^(step / interval). Matches
/// the paper's decaying schedule (1e-3 → 5e-4 → 1e-4 style) when configured
/// with the right factor.
class StepDecaySchedule {
 public:
  StepDecaySchedule(float base_lr, float factor, std::size_t interval);

  float LrAt(std::size_t step) const;

 private:
  float base_lr_;
  float factor_;
  std::size_t interval_;
};

}  // namespace cip::optim
