#include "optim/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace cip::optim {

void Optimizer::RestoreState(std::vector<Tensor> state) {
  CIP_CHECK_MSG(state.empty(),
                "this optimizer kind carries no cross-step state; refusing a "
                "non-empty snapshot of " << state.size() << " tensors");
}

Sgd::Sgd(float lr, float momentum, float weight_decay, float clip_norm)
    : lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay),
      clip_norm_(clip_norm) {
  CIP_CHECK_GT(lr, 0.0f);
  CIP_CHECK_GE(momentum, 0.0f);
  CIP_CHECK_GE(weight_decay, 0.0f);
  CIP_CHECK_GE(clip_norm, 0.0f);
}

void Sgd::Step(std::span<nn::Parameter* const> params) {
  if (clip_norm_ > 0.0f) {
    double sq = 0.0;
    for (const nn::Parameter* p : params) {
      for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
    }
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > clip_norm_) {
      const float scale = clip_norm_ / norm;
      for (nn::Parameter* p : params) ops::ScaleInPlace(p->grad, scale);
    }
  }
  if (momentum_ > 0.0f && velocity_.size() != params.size()) {
    CIP_CHECK_EQ(velocity_.size(), 0u);  // parameter set must not change
    velocity_.reserve(params.size());
    for (const nn::Parameter* p : params) velocity_.emplace_back(p->value.shape());
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Parameter& p = *params[i];
    if (weight_decay_ > 0.0f) ops::Axpy(p.grad, weight_decay_, p.value);
    if (momentum_ > 0.0f) {
      Tensor& v = velocity_[i];
      CIP_CHECK(v.SameShape(p.grad));
      ops::ScaleInPlace(v, momentum_);
      ops::AddInPlace(v, p.grad);
      ops::Axpy(p.value, -lr_, v);
    } else {
      ops::Axpy(p.value, -lr_, p.grad);
    }
    p.ZeroGrad();
  }
}

void Sgd::RestoreState(std::vector<Tensor> state) {
  // Either a pre-first-step snapshot (empty) or one velocity per parameter;
  // the lazy init in Step validates the count against the parameter set.
  velocity_ = std::move(state);
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  CIP_CHECK_GT(lr, 0.0f);
}

void Adam::Step(std::span<nn::Parameter* const> params) {
  if (m_.size() != params.size()) {
    CIP_CHECK_EQ(m_.size(), 0u);
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const nn::Parameter* p : params) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
  }
  ++step_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    nn::Parameter& p = *params[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    CIP_CHECK(m.SameShape(p.grad));
    for (std::size_t j = 0; j < p.grad.size(); ++j) {
      const float g = p.grad[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p.ZeroGrad();
  }
}

std::vector<Tensor> Adam::ExportState() const {
  std::vector<Tensor> out;
  out.reserve(1 + 2 * m_.size());
  Tensor step({1});
  step[0] = static_cast<float>(step_);
  out.push_back(std::move(step));
  for (std::size_t i = 0; i < m_.size(); ++i) {
    out.push_back(m_[i]);
    out.push_back(v_[i]);
  }
  return out;
}

void Adam::RestoreState(std::vector<Tensor> state) {
  CIP_CHECK_MSG(!state.empty() && state.front().size() == 1 &&
                    state.size() % 2 == 1,
                "Adam snapshot must be {step} + (m, v) pairs");
  step_ = static_cast<long>(state.front()[0]);
  CIP_CHECK_GE(step_, 0L);
  m_.clear();
  v_.clear();
  for (std::size_t i = 1; i < state.size(); i += 2) {
    m_.push_back(std::move(state[i]));
    v_.push_back(std::move(state[i + 1]));
  }
}

StepDecaySchedule::StepDecaySchedule(float base_lr, float factor,
                                     std::size_t interval)
    : base_lr_(base_lr), factor_(factor), interval_(interval) {
  CIP_CHECK_GT(base_lr, 0.0f);
  CIP_CHECK_GT(factor, 0.0f);
  CIP_CHECK_GT(interval, 0u);
}

float StepDecaySchedule::LrAt(std::size_t step) const {
  const auto k = static_cast<float>(step / interval_);
  return base_lr_ * std::pow(factor_, k);
}

}  // namespace cip::optim
