#include "nn/conv2d.h"

#include <utility>

#include "common/env.h"
#include "common/parallel.h"
#include "nn/init.h"

namespace cip::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               Rng& rng, std::string name)
    : ic_(in_channels),
      oc_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      name_(std::move(name)),
      w_(name_ + ".w", Tensor({out_channels, in_channels * kernel * kernel})),
      b_(name_ + ".b", Tensor({out_channels})) {
  CIP_CHECK_GT(ic_, 0u);
  CIP_CHECK_GT(oc_, 0u);
  CIP_CHECK_GT(k_, 0u);
  CIP_CHECK_GT(stride_, 0u);
  HeNormal(w_.value, ic_ * k_ * k_, rng);
}

// CIP_HOT  (eval conv forward: one output allocation, zero scratch)
Tensor Conv2d::ForwardGemm(const Tensor& x, std::size_t n, std::size_t oh,
                           std::size_t ow) {
  // CIP_ANALYZE_OK(hot-alloc-tensor): the returned output - the one allocation eval forward permits (test_alloc_free)
  Tensor y;
  ForwardGemmInto(x, n, oh, ow, y);
  return y;
}

// CIP_HOT  (serve-path conv core: writes into caller-owned output scratch)
void Conv2d::ForwardGemmInto(const Tensor& x, std::size_t n, std::size_t oh,
                             std::size_t ow, Tensor& y) {
  const std::size_t h = x.dim(2), w = x.dim(3);
  const ops::Conv2dGeom geom = Geom(h, w);
  const std::size_t rows = n * oh * ow;
  const std::size_t patch = geom.PatchSize();
  EnsureShape(col_, {rows, patch});
  // Pointers hoisted out of the parallel region: a non-const data() bumps the
  // tensor's version counter, which must not happen concurrently (tensor.h).
  {
    const float* px_all = x.data();
    float* pcol = col_.data();
    ParallelFor(0, n, [&](std::size_t i) {
      ops::Im2ColInto(px_all + i * ic_ * h * w, geom,
                      pcol + i * oh * ow * patch);
    });
  }
  EnsureShape(gemm_y_, {rows, oc_});
  if (ops::internal::UsesBlockedGemm(rows, patch, oc_)) {
    // Blocked regime: multiply against the cached pre-packed weight, repacking
    // only when the weight actually changed (optimizer steps bump version()).
    // Bit-identical to MatmulTransBInto, which packs the same panels per call.
    if (packed_w_.empty() || packed_w_version_ != w_.value.version() ||
        packed_w_.isa() != ops::ActiveGemmIsa()) {
      ops::PackBForMatmulTransBInto(w_.value, packed_w_);
      packed_w_version_ = w_.value.version();
    }
    ops::MatmulPackedInto(col_, packed_w_, gemm_y_);  // [rows, oc]
  } else {
    ops::MatmulTransBInto(col_, w_.value, gemm_y_);  // [rows, oc]
  }
  // Scatter [N·OH·OW, OC] back to NCHW and add the bias.
  EnsureShape(y, {n, oc_, oh, ow});
  const float* pg = std::as_const(gemm_y_).data();
  const float* pb = std::as_const(b_.value).data();
  float* py_all = y.data();
  ParallelFor(0, n, [&](std::size_t i) {
    const float* grow = pg + i * oh * ow * oc_;
    float* py = py_all + i * oc_ * oh * ow;
    for (std::size_t pos = 0; pos < oh * ow; ++pos) {
      const float* orow = grow + pos * oc_;
      for (std::size_t c = 0; c < oc_; ++c) {
        py[c * oh * ow + pos] = orow[c] + pb[c];
      }
    }
  });
}

Tensor Conv2d::ForwardNaive(const Tensor& x, std::size_t n, std::size_t oh,
                            std::size_t ow) const {
  const std::size_t h = x.dim(2), w = x.dim(3);
  // CIP_ANALYZE_OK(hot-alloc-tensor): CIP_NAIVE_CONV reference path — correctness over speed, allocates by design; the default eval path is ForwardGemmInto into reusable scratch
  Tensor y({n, oc_, oh, ow});
  const float* pw = w_.value.data();
  const float* pb = b_.value.data();
  const float* px_all = x.data();
  float* py_all = y.data();
  ParallelFor(0, n, [&](std::size_t i) {
    const float* px = px_all + i * ic_ * h * w;
    float* py = py_all + i * oc_ * oh * ow;
    for (std::size_t co = 0; co < oc_; ++co) {
      const float* wrow = pw + co * ic_ * k_ * k_;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = pb[co];
          for (std::size_t c = 0; c < ic_; ++c) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const long iy = static_cast<long>(oy * stride_ + ky) -
                              static_cast<long>(pad_);
              if (iy < 0 || iy >= static_cast<long>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const long ix = static_cast<long>(ox * stride_ + kx) -
                                static_cast<long>(pad_);
                if (ix < 0 || ix >= static_cast<long>(w)) continue;
                acc += px[c * h * w + static_cast<std::size_t>(iy) * w +
                          static_cast<std::size_t>(ix)] *
                       wrow[c * k_ * k_ + ky * k_ + kx];
              }
            }
          }
          py[co * oh * ow + oy * ow + ox] = acc;
        }
      }
    }
  });
  return y;
}

Tensor Conv2d::Forward(const Tensor& x, bool train) {
  CIP_CHECK_EQ(x.rank(), 4u);
  CIP_CHECK_EQ(x.dim(1), ic_);
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = OutExtent(h), ow = OutExtent(w);
  CIP_DCHECK_GT(oh, 0u);
  CIP_DCHECK_GT(ow, 0u);
  Tensor y = NaiveConvEnabled() ? ForwardNaive(x, n, oh, ow)
                                : ForwardGemm(x, n, oh, ow);
  if (train) cached_inputs_.push(x);
  return y;
}

// CIP_HOT  (serve-path conv forward: zero allocations once scratch is warm)
const Tensor& Conv2d::EvalForward(const Tensor& x) {
  CIP_CHECK_EQ(x.rank(), 4u);
  CIP_CHECK_EQ(x.dim(1), ic_);
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = OutExtent(h), ow = OutExtent(w);
  CIP_DCHECK_GT(oh, 0u);
  CIP_DCHECK_GT(ow, 0u);
  if (NaiveConvEnabled()) {
    // Reference path: correctness over speed, allocates like Forward.
    eval_out_ = ForwardNaive(x, n, oh, ow);
  } else {
    ForwardGemmInto(x, n, oh, ow, eval_out_);
  }
  return eval_out_;
}

Tensor Conv2d::BackwardGemm(const Tensor& x, const Tensor& grad_out) {
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const ops::Conv2dGeom geom = Geom(h, w);
  const std::size_t oh = geom.OutH(), ow = geom.OutW();
  const std::size_t rows = n * oh * ow;
  const std::size_t patch = geom.PatchSize();

  // grad_out [N, OC, OH, OW] -> gy_ [N·OH·OW, OC] (the GEMM layout).
  EnsureShape(gy_, {rows, oc_});
  const float* pg_all = grad_out.data();
  float* pgy = gy_.data();
  ParallelFor(0, n, [&](std::size_t i) {
    const float* pg = pg_all + i * oc_ * oh * ow;
    float* grow = pgy + i * oh * ow * oc_;
    for (std::size_t c = 0; c < oc_; ++c) {
      for (std::size_t pos = 0; pos < oh * ow; ++pos) {
        grow[pos * oc_ + c] = pg[c * oh * ow + pos];
      }
    }
  });

  // Bias gradient: column sums of gy_, accumulated without a temporary.
  ops::SumRowsAccumInto(gy_, b_.grad);

  // Recompute the batched lowering of x. The col_ scratch cannot be trusted
  // to still hold it: the dual-channel model runs forward(ch1), forward(ch2)
  // and then backs them out LIFO, so by the time ch1's Backward runs, col_
  // holds ch2's lowering.
  EnsureShape(col_, {rows, patch});
  {
    // Hoisted for the same version-counter reason as in ForwardGemm.
    const float* px_all = x.data();
    float* pcol = col_.data();
    ParallelFor(0, n, [&](std::size_t i) {
      ops::Im2ColInto(px_all + i * ic_ * h * w, geom,
                      pcol + i * oh * ow * patch);
    });
  }

  // Weight gradient: dW = gyᵀ · col, one GEMM for the whole batch.
  EnsureShape(dw_, {oc_, patch});
  ops::MatmulTransAInto(gy_, col_, dw_);
  ops::AddInPlace(w_.grad, dw_);

  // Input gradient: back to column space with one GEMM, then scatter-add.
  EnsureShape(dcol_, {rows, patch});
  ops::MatmulInto(gy_, w_.value, dcol_);
  Tensor dx({n, ic_, h, w});
  {
    const float* pdcol = std::as_const(dcol_).data();
    float* pdx = dx.data();
    ParallelFor(0, n, [&](std::size_t i) {
      ops::Col2ImInto(pdcol + i * oh * ow * patch, geom,
                      pdx + i * ic_ * h * w);
    });
  }
  return dx;
}

Tensor Conv2d::BackwardNaive(const Tensor& x, const Tensor& grad_out) {
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = OutExtent(h), ow = OutExtent(w);
  Tensor dx({n, ic_, h, w});
  // Serial on purpose: dw/db accumulate across every sample and output
  // position, and the reference path favors determinism over speed.
  const float* pw = w_.value.data();
  float* pdw = w_.grad.data();
  float* pdb = b_.grad.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float* px = x.data() + i * ic_ * h * w;
    const float* pg = grad_out.data() + i * oc_ * oh * ow;
    float* pdx = dx.data() + i * ic_ * h * w;
    for (std::size_t co = 0; co < oc_; ++co) {
      const float* wrow = pw + co * ic_ * k_ * k_;
      float* dwrow = pdw + co * ic_ * k_ * k_;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = pg[co * oh * ow + oy * ow + ox];
          pdb[co] += g;
          if (g == 0.0f) continue;
          for (std::size_t c = 0; c < ic_; ++c) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const long iy = static_cast<long>(oy * stride_ + ky) -
                              static_cast<long>(pad_);
              if (iy < 0 || iy >= static_cast<long>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const long ix = static_cast<long>(ox * stride_ + kx) -
                                static_cast<long>(pad_);
                if (ix < 0 || ix >= static_cast<long>(w)) continue;
                const std::size_t xi = c * h * w +
                                       static_cast<std::size_t>(iy) * w +
                                       static_cast<std::size_t>(ix);
                const std::size_t wi = c * k_ * k_ + ky * k_ + kx;
                dwrow[wi] += g * px[xi];
                pdx[xi] += g * wrow[wi];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cached_inputs_.empty(), name_ << ": backward without forward");
  const Tensor x = std::move(cached_inputs_.top());
  cached_inputs_.pop();
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  CIP_CHECK_EQ(grad_out.dim(0), n);
  CIP_CHECK_EQ(grad_out.dim(1), oc_);
  CIP_CHECK_EQ(grad_out.dim(2), OutExtent(h));
  CIP_CHECK_EQ(grad_out.dim(3), OutExtent(w));
  return NaiveConvEnabled() ? BackwardNaive(x, grad_out)
                            : BackwardGemm(x, grad_out);
}

void Conv2d::CollectParameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

void Conv2d::ClearCache() {
  while (!cached_inputs_.empty()) cached_inputs_.pop();
}

}  // namespace cip::nn
