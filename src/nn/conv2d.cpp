#include "nn/conv2d.h"

#include "common/parallel.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace cip::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               Rng& rng, std::string name)
    : ic_(in_channels),
      oc_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      name_(std::move(name)),
      w_(name_ + ".w", Tensor({out_channels, in_channels * kernel * kernel})),
      b_(name_ + ".b", Tensor({out_channels})) {
  CIP_CHECK_GT(ic_, 0u);
  CIP_CHECK_GT(oc_, 0u);
  CIP_CHECK_GT(k_, 0u);
  CIP_CHECK_GT(stride_, 0u);
  HeNormal(w_.value, ic_ * k_ * k_, rng);
}

Tensor Conv2d::Im2Col(const Tensor& x, std::size_t n_index, std::size_t oh,
                      std::size_t ow) const {
  CIP_DCHECK_EQ(x.rank(), 4u);
  CIP_DCHECK_LT(n_index, x.dim(0));
  CIP_DCHECK_EQ(x.dim(1), ic_);
  const std::size_t h = x.dim(2), w = x.dim(3);
  CIP_DCHECK_EQ(oh, OutExtent(h));
  CIP_DCHECK_EQ(ow, OutExtent(w));
  const std::size_t cols = ic_ * k_ * k_;
  Tensor col({oh * ow, cols});
  const float* px = x.data() + n_index * ic_ * h * w;
  float* pc = col.data();
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      float* crow = pc + (oy * ow + ox) * cols;
      for (std::size_t c = 0; c < ic_; ++c) {
        for (std::size_t ky = 0; ky < k_; ++ky) {
          const long iy = static_cast<long>(oy * stride_ + ky) -
                          static_cast<long>(pad_);
          for (std::size_t kx = 0; kx < k_; ++kx) {
            const long ix = static_cast<long>(ox * stride_ + kx) -
                            static_cast<long>(pad_);
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<long>(h) && ix >= 0 &&
                ix < static_cast<long>(w)) {
              v = px[c * h * w + static_cast<std::size_t>(iy) * w +
                     static_cast<std::size_t>(ix)];
            }
            crow[c * k_ * k_ + ky * k_ + kx] = v;
          }
        }
      }
    }
  }
  return col;
}

void Conv2d::Col2Im(const Tensor& col, std::size_t oh, std::size_t ow,
                    std::size_t h, std::size_t w, Tensor& dx,
                    std::size_t n_index) const {
  CIP_DCHECK_EQ(col.rank(), 2u);
  CIP_DCHECK_EQ(col.dim(0), oh * ow);
  CIP_DCHECK_EQ(col.dim(1), ic_ * k_ * k_);
  CIP_DCHECK_EQ(dx.rank(), 4u);
  CIP_DCHECK_LT(n_index, dx.dim(0));
  const std::size_t cols = ic_ * k_ * k_;
  float* px = dx.data() + n_index * ic_ * h * w;
  const float* pc = col.data();
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      const float* crow = pc + (oy * ow + ox) * cols;
      for (std::size_t c = 0; c < ic_; ++c) {
        for (std::size_t ky = 0; ky < k_; ++ky) {
          const long iy = static_cast<long>(oy * stride_ + ky) -
                          static_cast<long>(pad_);
          if (iy < 0 || iy >= static_cast<long>(h)) continue;
          for (std::size_t kx = 0; kx < k_; ++kx) {
            const long ix = static_cast<long>(ox * stride_ + kx) -
                            static_cast<long>(pad_);
            if (ix < 0 || ix >= static_cast<long>(w)) continue;
            px[c * h * w + static_cast<std::size_t>(iy) * w +
               static_cast<std::size_t>(ix)] +=
                crow[c * k_ * k_ + ky * k_ + kx];
          }
        }
      }
    }
  }
}

Tensor Conv2d::Forward(const Tensor& x, bool train) {
  CIP_CHECK_EQ(x.rank(), 4u);
  CIP_CHECK_EQ(x.dim(1), ic_);
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = OutExtent(h), ow = OutExtent(w);
  CIP_DCHECK_GT(oh, 0u);
  CIP_DCHECK_GT(ow, 0u);
  Tensor y({n, oc_, oh, ow});
  ParallelFor(0, n, [&](std::size_t i) {
    const Tensor col = Im2Col(x, i, oh, ow);           // [oh*ow, ic*k*k]
    const Tensor out = ops::MatmulTransB(col, w_.value);  // [oh*ow, oc]
    CIP_DCHECK_EQ(out.dim(1), oc_);
    float* py = y.data() + i * oc_ * oh * ow;
    for (std::size_t pos = 0; pos < oh * ow; ++pos) {
      const float* orow = out.data() + pos * oc_;
      for (std::size_t c = 0; c < oc_; ++c) {
        py[c * oh * ow + pos] = orow[c] + b_.value[c];
      }
    }
  });
  if (train) cached_inputs_.push(x);
  return y;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cached_inputs_.empty(), name_ << ": backward without forward");
  const Tensor x = std::move(cached_inputs_.top());
  cached_inputs_.pop();
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = OutExtent(h), ow = OutExtent(w);
  CIP_CHECK_EQ(grad_out.dim(0), n);
  CIP_CHECK_EQ(grad_out.dim(1), oc_);
  CIP_CHECK_EQ(grad_out.dim(2), oh);
  CIP_CHECK_EQ(grad_out.dim(3), ow);

  Tensor dx({n, ic_, h, w});
  // Accumulate per-sample weight grads locally, merge under a plain loop to
  // stay deterministic (no atomics); sample-level parallelism only for dx.
  const std::size_t cols = ic_ * k_ * k_;
  std::vector<Tensor> dw_per_thread;
  Tensor dw({oc_, cols});
  Tensor db({oc_});
  for (std::size_t i = 0; i < n; ++i) {
    // gy_i as [oh*ow, oc] (transposed layout of grad_out sample i).
    Tensor gy({oh * ow, oc_});
    const float* pg = grad_out.data() + i * oc_ * oh * ow;
    for (std::size_t c = 0; c < oc_; ++c) {
      for (std::size_t pos = 0; pos < oh * ow; ++pos) {
        gy[pos * oc_ + c] = pg[c * oh * ow + pos];
        db[c] += pg[c * oh * ow + pos];
      }
    }
    const Tensor col = Im2Col(x, i, oh, ow);          // [oh*ow, cols]
    ops::AddInPlace(dw, ops::MatmulTransA(gy, col));  // [oc, cols]
    const Tensor dcol = ops::Matmul(gy, w_.value);    // [oh*ow, cols]
    Col2Im(dcol, oh, ow, h, w, dx, i);
  }
  ops::AddInPlace(w_.grad, dw);
  ops::AddInPlace(b_.grad, db);
  return dx;
}

void Conv2d::CollectParameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

void Conv2d::ClearCache() {
  while (!cached_inputs_.empty()) cached_inputs_.pop();
}

}  // namespace cip::nn
