// The paper's dual-channel architecture (Fig. 3).
//
// Both components of a blended input B(x, t) = ((1-α)x + αt, (1+α)x − αt) go
// through ONE shared backbone, then global average pooling; the two pooled
// feature vectors are concatenated and classified by a fully connected head.
// Sharing the backbone is what keeps the parameter overhead at ~+0.9%
// (Table XI): only the head doubles its input width.
//
// Implementation note: the backbone's LIFO cache stacks let us run
// forward(ch1), forward(ch2), then backward(ch2), backward(ch1); parameter
// gradients from both channels accumulate before the optimizer step.
#pragma once

#include <memory>
#include <utility>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/pooling.h"

namespace cip::nn {

class DualChannelClassifier {
 public:
  DualChannelClassifier(ModulePtr backbone, std::size_t feature_dim,
                        std::size_t num_classes, Rng& rng);

  /// Logits for a batch of blended pairs (x1 = (1-α)x+αt, x2 = (1+α)x−αt).
  Tensor Forward(const Tensor& x1, const Tensor& x2, bool train);

  /// Inference-only logits, bit-identical to Forward(x1, x2, false) but
  /// allocation-free at steady state: every layer computes into persistent
  /// scratch (Module::EvalForward) and the channel-1 features are copied
  /// aside before the shared backbone reruns on channel 2. The returned
  /// reference is valid until the next forward through this model.
  const Tensor& EvalForward(const Tensor& x1, const Tensor& x2);

  /// Backprop from dL/dlogits; returns (dL/dx1, dL/dx2).
  std::pair<Tensor, Tensor> Backward(const Tensor& dlogits);

  /// All trainable parameters (shared backbone then head), deterministic order.
  std::vector<Parameter*> Parameters();
  /// Total number of trainable scalars (backbone counted once).
  std::size_t ParameterCount();
  /// Zero every parameter's gradient accumulator.
  void ZeroGrad();
  /// Drop pending forward caches from both channels.
  void ClearCache();

  /// Number of output classes (logit width).
  std::size_t num_classes() const { return num_classes_; }
  /// Per-channel backbone output width; the head sees 2x this after concat.
  std::size_t feature_dim() const { return feature_dim_; }

 private:
  ModulePtr backbone_;
  GlobalAvgPool gap_;
  std::size_t feature_dim_;
  std::size_t num_classes_;
  Linear head_;  // input width 2 * feature_dim

  // Concat/split staging, reused across steps (reallocated only on
  // batch-shape change): concat_ [N, 2D] feeds the head; ga_/gb_ [N, D] are
  // the per-channel halves of the head's input gradient; eval_f1_ [N, D]
  // holds channel-1 pooled features across the shared backbone's channel-2
  // rerun in EvalForward.
  Tensor concat_, ga_, gb_, eval_f1_;
};

}  // namespace cip::nn
