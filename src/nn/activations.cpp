#include "nn/activations.h"

#include "tensor/ops.h"

namespace cip::nn {

Tensor ReLU::Forward(const Tensor& x, bool train) {
  Tensor y(x.shape());
  Tensor mask(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool pos = x[i] > 0.0f;
    y[i] = pos ? x[i] : 0.0f;
    mask[i] = pos ? 1.0f : 0.0f;
  }
  if (train) cached_masks_.push(std::move(mask));
  return y;
}

// CIP_HOT  (serve-path activation: scratch-buffer reuse, no mask)
const Tensor& ReLU::EvalForward(const Tensor& x) {
  EnsureShape(eval_out_, x.shape());
  const float* px = x.data();
  float* py = eval_out_.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    py[i] = px[i] > 0.0f ? px[i] : 0.0f;
  }
  return eval_out_;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cached_masks_.empty(), name_ << ": backward without forward");
  Tensor mask = std::move(cached_masks_.top());
  cached_masks_.pop();
  return ops::Mul(grad_out, mask);
}

void ReLU::ClearCache() {
  while (!cached_masks_.empty()) cached_masks_.pop();
}

Dropout::Dropout(float rate, Rng& rng, std::string name)
    : rate_(rate), rng_(rng.Fork(0xD80)), name_(std::move(name)) {
  CIP_CHECK(rate_ >= 0.0f && rate_ < 1.0f);
}

Tensor Dropout::Forward(const Tensor& x, bool train) {
  if (!train || rate_ == 0.0f) return x;
  Tensor mask(x.shape());
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mask[i] = rng_.Bernoulli(keep) ? scale : 0.0f;
  }
  Tensor y = ops::Mul(x, mask);
  cached_masks_.push(std::move(mask));
  return y;
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  if (rate_ == 0.0f) return grad_out;
  CIP_CHECK_MSG(!cached_masks_.empty(), name_ << ": backward without forward");
  Tensor mask = std::move(cached_masks_.top());
  cached_masks_.pop();
  return ops::Mul(grad_out, mask);
}

void Dropout::ClearCache() {
  while (!cached_masks_.empty()) cached_masks_.pop();
}

}  // namespace cip::nn
