#include "nn/backbones.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace cip::nn {

namespace {

ModulePtr Conv3x3(std::size_t ic, std::size_t oc, Rng& rng,
                  const std::string& name) {
  return std::make_unique<Conv2d>(ic, oc, /*kernel=*/3, /*stride=*/1,
                                  /*padding=*/1, rng, name);
}

ModulePtr Conv1x1(std::size_t ic, std::size_t oc, Rng& rng,
                  const std::string& name) {
  return std::make_unique<Conv2d>(ic, oc, /*kernel=*/1, /*stride=*/1,
                                  /*padding=*/0, rng, name);
}

void CheckImageSpec(const ModelSpec& spec) {
  CIP_CHECK_MSG(spec.input_shape.size() == 3,
                "image archs need {C,H,W}, got "
                    << ShapeToString(spec.input_shape));
  CIP_CHECK_EQ(spec.input_shape[1] % 4, 0u);
  CIP_CHECK_EQ(spec.input_shape[2] % 4, 0u);
}

Backbone MakeVgg(const ModelSpec& spec, Rng& rng) {
  CheckImageSpec(spec);
  const std::size_t c = spec.input_shape[0], w = spec.width;
  auto seq = std::make_unique<Sequential>("vgg");
  seq->Add(Conv3x3(c, w, rng, "vgg.c1"))
      .Add(std::make_unique<ReLU>())
      .Add(Conv3x3(w, w, rng, "vgg.c2"))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2d>(2, "vgg.p1"))
      .Add(Conv3x3(w, 2 * w, rng, "vgg.c3"))
      .Add(std::make_unique<ReLU>())
      .Add(Conv3x3(2 * w, 2 * w, rng, "vgg.c4"))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2d>(2, "vgg.p2"));
  return {std::move(seq), 2 * w};
}

ModulePtr ResidualBlock(std::size_t ch, Rng& rng, const std::string& name) {
  auto inner = std::make_unique<Sequential>(name + ".inner");
  inner->Add(Conv3x3(ch, ch, rng, name + ".c1"))
      .Add(std::make_unique<ReLU>())
      .Add(Conv3x3(ch, ch, rng, name + ".c2"));
  return std::make_unique<Residual>(std::move(inner), name);
}

Backbone MakeResNet(const ModelSpec& spec, Rng& rng) {
  CheckImageSpec(spec);
  const std::size_t c = spec.input_shape[0], w = spec.width;
  auto seq = std::make_unique<Sequential>("resnet");
  seq->Add(Conv3x3(c, w, rng, "res.stem"))
      .Add(std::make_unique<ReLU>())
      .Add(ResidualBlock(w, rng, "res.b1"))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2d>(2, "res.p1"))
      .Add(Conv3x3(w, 2 * w, rng, "res.widen"))
      .Add(std::make_unique<ReLU>())
      .Add(ResidualBlock(2 * w, rng, "res.b2"))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2d>(2, "res.p2"));
  return {std::move(seq), 2 * w};
}

ModulePtr DenseLayer(std::size_t ic, std::size_t growth, Rng& rng,
                     const std::string& name) {
  auto inner = std::make_unique<Sequential>(name + ".inner");
  inner->Add(Conv3x3(ic, growth, rng, name + ".c"))
      .Add(std::make_unique<ReLU>());
  return std::make_unique<DenseConcat>(std::move(inner), name);
}

Backbone MakeDenseNet(const ModelSpec& spec, Rng& rng) {
  CheckImageSpec(spec);
  const std::size_t c = spec.input_shape[0], w = spec.width;
  const std::size_t g = std::max<std::size_t>(w / 2, 2);
  auto seq = std::make_unique<Sequential>("densenet");
  seq->Add(Conv3x3(c, w, rng, "dense.stem"))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2d>(2, "dense.p1"))
      .Add(DenseLayer(w, g, rng, "dense.d1"))        // w + g channels
      .Add(DenseLayer(w + g, g, rng, "dense.d2"))    // w + 2g channels
      .Add(Conv1x1(w + 2 * g, 2 * w, rng, "dense.trans"))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<MaxPool2d>(2, "dense.p2"));
  return {std::move(seq), 2 * w};
}

Backbone MakeMlp(const ModelSpec& spec, Rng& rng) {
  CIP_CHECK_MSG(spec.input_shape.size() == 1,
                "MLP arch needs a flat {D} input shape");
  const std::size_t d = spec.input_shape[0], w = spec.width;
  // The paper's Purchase-50 MLP has dense layers 512/256/128; we keep the
  // same 4:2:1 pyramid parameterized by `width` (feature dim = 2*width so the
  // dual-channel head width matches the conv backbones' convention).
  auto seq = std::make_unique<Sequential>("mlp");
  seq->Add(std::make_unique<Linear>(d, 8 * w, rng, "mlp.l1"))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<Linear>(8 * w, 4 * w, rng, "mlp.l2"))
      .Add(std::make_unique<ReLU>())
      .Add(std::make_unique<Linear>(4 * w, 2 * w, rng, "mlp.l3"))
      .Add(std::make_unique<ReLU>());
  return {std::move(seq), 2 * w};
}

}  // namespace

std::string ArchName(Arch arch) {
  switch (arch) {
    case Arch::kResNet: return "ResNet";
    case Arch::kDenseNet: return "DenseNet";
    case Arch::kVGG: return "VGG";
    case Arch::kMLP: return "MLP";
  }
  return "unknown";
}

Backbone MakeBackbone(const ModelSpec& spec, Rng& rng) {
  CIP_CHECK_GT(spec.width, 0u);
  switch (spec.arch) {
    case Arch::kResNet: return MakeResNet(spec, rng);
    case Arch::kDenseNet: return MakeDenseNet(spec, rng);
    case Arch::kVGG: return MakeVgg(spec, rng);
    case Arch::kMLP: return MakeMlp(spec, rng);
  }
  throw CheckError("unknown arch");
}

std::unique_ptr<Classifier> MakeClassifier(const ModelSpec& spec) {
  Rng rng(spec.seed);
  Backbone b = MakeBackbone(spec, rng);
  return std::make_unique<Classifier>(std::move(b.module), b.feature_dim,
                                      spec.num_classes, rng);
}

std::unique_ptr<DualChannelClassifier> MakeDualChannelClassifier(
    const ModelSpec& spec) {
  Rng rng(spec.seed);
  Backbone b = MakeBackbone(spec, rng);
  return std::make_unique<DualChannelClassifier>(
      std::move(b.module), b.feature_dim, spec.num_classes, rng);
}

}  // namespace cip::nn
