#include "nn/init.h"

#include <cmath>

namespace cip::nn {

void HeNormal(Tensor& w, std::size_t fan_in, Rng& rng) {
  CIP_CHECK_GT(fan_in, 0u);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (float& x : w.flat()) x = rng.Normal(0.0f, stddev);
}

void UniformInit(Tensor& w, float bound, Rng& rng) {
  for (float& x : w.flat()) x = rng.Uniform(-bound, bound);
}

}  // namespace cip::nn
