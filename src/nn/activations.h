// Activation layers.
#pragma once

#include <stack>

#include "common/rng.h"
#include "nn/module.h"

namespace cip::nn {

class ReLU : public Module {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

 private:
  std::string name_;
  std::stack<Tensor> cached_masks_;
};

/// Inverted dropout; identity at inference.
class Dropout : public Module {
 public:
  Dropout(float rate, Rng& rng, std::string name = "dropout");

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override { return x; }
  std::string Name() const override { return name_; }
  void ClearCache() override;

 private:
  float rate_;
  Rng rng_;
  std::string name_;
  std::stack<Tensor> cached_masks_;
};

}  // namespace cip::nn
