// Layer-based neural network with explicit backprop.
//
// Modules cache forward activations on a per-module LIFO stack and pop them
// in Backward. This makes a *shared* module reusable several times within one
// step — the dual-channel CIP architecture runs the same backbone on both
// blended channels (forward ch1, forward ch2, backward ch2, backward ch1) and
// gradients from both passes accumulate into the shared parameters, exactly
// matching the paper's weight-sharing claim (Table XI).
//
// Backward always returns the gradient w.r.t. the module input; this is what
// lets CIP's Step I obtain d(loss)/d(perturbation) without a general autograd.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cip::nn {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  /// Reset the gradient accumulator to zero (value untouched).
  void ZeroGrad() { grad.Zero(); }
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Compute outputs, pushing whatever Backward will need onto this module's
  /// cache stack (only when `train` is true; inference pushes nothing).
  virtual Tensor Forward(const Tensor& x, bool train) = 0;

  /// Pop the most recent forward cache, accumulate parameter gradients, and
  /// return the gradient w.r.t. that forward call's input.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  /// Inference-only forward into a persistent per-module output buffer:
  /// bit-identical to Forward(x, /*train=*/false), but allocation-free at
  /// steady state — the buffer grows once and is reused, and a later batch
  /// that fits the retained capacity triggers no reallocation (Tensor::
  /// Resize). The returned reference stays valid until the next EvalForward
  /// on this module (identity layers may return `x` itself). The base
  /// implementation falls back to Forward(x, false); concrete layers
  /// override it to compute without per-call allocation.
  virtual const Tensor& EvalForward(const Tensor& x) {
    eval_out_ = Forward(x, /*train=*/false);
    return eval_out_;
  }

  /// Append this module's parameters (deterministic order).
  virtual void CollectParameters(std::vector<Parameter*>& out) { (void)out; }

  /// Stable human-readable identifier used in parameter names and logs.
  virtual std::string Name() const = 0;

  /// Drop any pending forward caches (e.g. after an exception or when a
  /// forward pass is not followed by backward).
  virtual void ClearCache() {}

  /// All parameters of this module (and children), in deterministic order.
  std::vector<Parameter*> Parameters() {
    std::vector<Parameter*> out;
    CollectParameters(out);
    return out;
  }

  /// Total number of trainable scalars across all parameters.
  std::size_t ParameterCount() {
    std::size_t n = 0;
    for (const Parameter* p : Parameters()) n += p->value.size();
    return n;
  }

  /// Zero every parameter's gradient accumulator.
  void ZeroGrad() {
    for (Parameter* p : Parameters()) p->ZeroGrad();
  }

 protected:
  // Persistent EvalForward output buffer (grow-once, reused across calls).
  Tensor eval_out_;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace cip::nn
