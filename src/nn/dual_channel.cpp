#include "nn/dual_channel.h"

#include "tensor/ops.h"

namespace cip::nn {

namespace {

/// Concat two [N, D] matrices along dim 1 into caller-owned scratch.
void ConcatColsInto(const Tensor& a, const Tensor& b, Tensor& out) {
  CIP_CHECK_EQ(a.rank(), 2u);
  CIP_CHECK_EQ(b.rank(), 2u);
  CIP_CHECK_EQ(a.dim(0), b.dim(0));
  const std::size_t n = a.dim(0), da = a.dim(1), db = b.dim(1);
  CIP_DCHECK_EQ(a.size(), n * da);
  CIP_DCHECK_EQ(b.size(), n * db);
  EnsureShape(out, {n, da + db});
  float* po = out.data();
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(a.data() + i * da, a.data() + (i + 1) * da, po + i * (da + db));
    std::copy(b.data() + i * db, b.data() + (i + 1) * db,
              po + i * (da + db) + da);
  }
}

/// Split the column-concat gradient back into caller-owned halves.
void SplitColsInto(const Tensor& g, std::size_t da, Tensor& ga, Tensor& gb) {
  CIP_CHECK_EQ(g.rank(), 2u);
  CIP_CHECK_GT(g.dim(1), da);
  const std::size_t n = g.dim(0), db = g.dim(1) - da;
  EnsureShape(ga, {n, da});
  EnsureShape(gb, {n, db});
  float* pa = ga.data();
  float* pb = gb.data();
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(g.data() + i * (da + db), g.data() + i * (da + db) + da,
              pa + i * da);
    std::copy(g.data() + i * (da + db) + da, g.data() + (i + 1) * (da + db),
              pb + i * db);
  }
}

}  // namespace

DualChannelClassifier::DualChannelClassifier(ModulePtr backbone,
                                             std::size_t feature_dim,
                                             std::size_t num_classes,
                                             Rng& rng)
    : backbone_(std::move(backbone)),
      feature_dim_(feature_dim),
      num_classes_(num_classes),
      head_(2 * feature_dim, num_classes, rng, "dual_head") {
  CIP_CHECK(backbone_ != nullptr);
  CIP_CHECK_GT(num_classes_, 1u);
}

Tensor DualChannelClassifier::Forward(const Tensor& x1, const Tensor& x2,
                                      bool train) {
  CIP_CHECK(x1.SameShape(x2));
  // LIFO order: channel-1 caches below channel-2 caches.
  Tensor f1 = gap_.Forward(backbone_->Forward(x1, train), train);
  Tensor f2 = gap_.Forward(backbone_->Forward(x2, train), train);
  CIP_CHECK_EQ(f1.dim(1), feature_dim_);
  CIP_DCHECK(f1.SameShape(f2));
  ConcatColsInto(f1, f2, concat_);
  return head_.Forward(concat_, train);
}

// CIP_HOT  (serve-path fused dual-channel forward: zero steady-state allocs)
const Tensor& DualChannelClassifier::EvalForward(const Tensor& x1,
                                                 const Tensor& x2) {
  CIP_CHECK(x1.SameShape(x2));
  // The backbone and gap are SHARED between channels: running channel 2
  // overwrites the scratch the channel-1 reference points into, so the
  // channel-1 features are copy-assigned aside first (capacity-reusing).
  eval_f1_ = gap_.EvalForward(backbone_->EvalForward(x1));
  const Tensor& f2 = gap_.EvalForward(backbone_->EvalForward(x2));
  CIP_CHECK_EQ(eval_f1_.dim(1), feature_dim_);
  CIP_DCHECK(eval_f1_.SameShape(f2));
  ConcatColsInto(eval_f1_, f2, concat_);
  return head_.EvalForward(concat_);
}

std::pair<Tensor, Tensor> DualChannelClassifier::Backward(
    const Tensor& dlogits) {
  Tensor dconcat = head_.Backward(dlogits);
  CIP_DCHECK_EQ(dconcat.dim(1), 2 * feature_dim_);
  SplitColsInto(dconcat, feature_dim_, ga_, gb_);
  // Pop channel-2 caches first, then channel-1.
  Tensor dx2 = backbone_->Backward(gap_.Backward(gb_));
  Tensor dx1 = backbone_->Backward(gap_.Backward(ga_));
  return {std::move(dx1), std::move(dx2)};
}

std::vector<Parameter*> DualChannelClassifier::Parameters() {
  std::vector<Parameter*> out;
  backbone_->CollectParameters(out);
  head_.CollectParameters(out);
  return out;
}

std::size_t DualChannelClassifier::ParameterCount() {
  std::size_t n = 0;
  for (const Parameter* p : Parameters()) n += p->value.size();
  return n;
}

void DualChannelClassifier::ZeroGrad() {
  for (Parameter* p : Parameters()) p->ZeroGrad();
}

void DualChannelClassifier::ClearCache() {
  backbone_->ClearCache();
  gap_.ClearCache();
  head_.ClearCache();
}

}  // namespace cip::nn
