// Composite modules: Sequential chain, residual and dense (concat) blocks.
#pragma once

#include <memory>
#include <stack>
#include <vector>

#include "nn/module.h"

namespace cip::nn {

/// Runs children in order; backward in reverse order.
class Sequential : public Module {
 public:
  explicit Sequential(std::string name = "seq") : name_(std::move(name)) {}

  /// Builder-style append. Returns *this for chaining.
  Sequential& Add(ModulePtr m) {
    CIP_CHECK(m != nullptr);
    children_.push_back(std::move(m));
    return *this;
  }

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override;
  void CollectParameters(std::vector<Parameter*>& out) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

  /// Number of child modules added so far.
  std::size_t ChildCount() const { return children_.size(); }

 private:
  std::string name_;
  std::vector<ModulePtr> children_;
};

/// y = inner(x) + x  (identity shortcut; inner must preserve shape).
class Residual : public Module {
 public:
  explicit Residual(ModulePtr inner, std::string name = "residual")
      : name_(std::move(name)), inner_(std::move(inner)) {
    CIP_CHECK(inner_ != nullptr);
  }

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override;
  void CollectParameters(std::vector<Parameter*>& out) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

 private:
  std::string name_;
  ModulePtr inner_;
};

/// y = concat_channels(x, inner(x)) — the DenseNet connectivity pattern.
/// Input and inner output must be [N, C, H, W] with identical N/H/W.
class DenseConcat : public Module {
 public:
  explicit DenseConcat(ModulePtr inner, std::string name = "dense")
      : name_(std::move(name)), inner_(std::move(inner)) {
    CIP_CHECK(inner_ != nullptr);
  }

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override;
  void CollectParameters(std::vector<Parameter*>& out) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

 private:
  std::string name_;
  ModulePtr inner_;
  std::stack<std::pair<std::size_t, std::size_t>> cached_channels_;  // (c_x, c_inner)
};

}  // namespace cip::nn
