#include "nn/linear.h"

#include <utility>

#include "nn/init.h"
#include "tensor/ops.h"

namespace cip::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               std::string name)
    : in_(in_features),
      out_(out_features),
      name_(std::move(name)),
      w_(name_ + ".w", Tensor({out_features, in_features})),
      b_(name_ + ".b", Tensor({out_features})) {
  CIP_CHECK_GT(in_, 0u);
  CIP_CHECK_GT(out_, 0u);
  HeNormal(w_.value, in_, rng);
}

// CIP_HOT  (eval linear forward: one output allocation, zero scratch)
Tensor Linear::Forward(const Tensor& x, bool train) {
  // CIP_ANALYZE_OK(hot-alloc-tensor): the returned output - the one allocation eval forward permits (test_alloc_free)
  Tensor y;
  ForwardInto(x, y);
  // CIP_ANALYZE_OK(hot-alloc-container): train-only branch: eval (train=false) never reaches this push
  if (train) cached_inputs_.push(x);
  return y;
}

// CIP_HOT  (serve-path linear forward: zero allocations once scratch is warm)
const Tensor& Linear::EvalForward(const Tensor& x) {
  ForwardInto(x, eval_out_);
  return eval_out_;
}

// CIP_HOT  (serve-path linear core: writes into caller-owned output scratch)
void Linear::ForwardInto(const Tensor& x, Tensor& y) {
  CIP_CHECK_EQ(x.rank(), 2u);
  CIP_CHECK_EQ(x.dim(1), in_);
  const std::size_t n = x.dim(0);
  EnsureShape(y, {n, out_});
  if (ops::internal::UsesBlockedGemm(n, in_, out_)) {
    // Blocked regime: multiply against the cached pre-packed weight, repacking
    // only when the weight actually changed (optimizer steps bump version()).
    // Bit-identical to MatmulTransBInto, which packs the same panels per call.
    if (packed_w_.empty() || packed_w_version_ != w_.value.version() ||
        packed_w_.isa() != ops::ActiveGemmIsa()) {
      ops::PackBForMatmulTransBInto(w_.value, packed_w_);
      packed_w_version_ = w_.value.version();
    }
    ops::MatmulPackedInto(x, packed_w_, y);  // [N, out]
  } else {
    ops::MatmulTransBInto(x, w_.value, y);  // [N, out]
  }
  CIP_DCHECK_EQ(b_.value.size(), out_);
  const float* pb = std::as_const(b_.value).data();
  float* py = y.data();
  for (std::size_t i = 0; i < n; ++i) {
    float* row = py + i * out_;
    for (std::size_t j = 0; j < out_; ++j) row[j] += pb[j];
  }
}

Tensor Linear::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cached_inputs_.empty(), name_ << ": backward without forward");
  const Tensor x = std::move(cached_inputs_.top());
  cached_inputs_.pop();
  CIP_CHECK_EQ(grad_out.rank(), 2u);
  CIP_CHECK_EQ(grad_out.dim(0), x.dim(0));
  CIP_CHECK_EQ(grad_out.dim(1), out_);
  // dW = gradᵀ · x,  db = sum over batch,  dx = grad · W
  EnsureShape(dw_, {out_, in_});
  ops::MatmulTransAInto(grad_out, x, dw_);
  ops::AddInPlace(w_.grad, dw_);
  ops::SumRowsAccumInto(grad_out, b_.grad);
  Tensor dx({x.dim(0), in_});
  ops::MatmulInto(grad_out, w_.value, dx);
  return dx;
}

void Linear::CollectParameters(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

void Linear::ClearCache() {
  while (!cached_inputs_.empty()) cached_inputs_.pop();
}

}  // namespace cip::nn
