#include "nn/classifier.h"

namespace cip::nn {

Classifier::Classifier(ModulePtr backbone, std::size_t feature_dim,
                       std::size_t num_classes, Rng& rng)
    : backbone_(std::move(backbone)),
      feature_dim_(feature_dim),
      num_classes_(num_classes),
      head_(feature_dim, num_classes, rng, "head") {
  CIP_CHECK(backbone_ != nullptr);
  CIP_CHECK_GT(num_classes_, 1u);
}

Tensor Classifier::Forward(const Tensor& x, bool train) {
  Tensor h = backbone_->Forward(x, train);
  h = gap_.Forward(h, train);
  CIP_CHECK_EQ(h.dim(1), feature_dim_);
  return head_.Forward(h, train);
}

// CIP_HOT  (serve-path single-channel forward: zero steady-state allocs)
const Tensor& Classifier::EvalForward(const Tensor& x) {
  const Tensor& h = gap_.EvalForward(backbone_->EvalForward(x));
  CIP_CHECK_EQ(h.dim(1), feature_dim_);
  return head_.EvalForward(h);
}

Tensor Classifier::Backward(const Tensor& dlogits) {
  Tensor g = head_.Backward(dlogits);
  g = gap_.Backward(g);
  return backbone_->Backward(g);
}

std::vector<Parameter*> Classifier::Parameters() {
  std::vector<Parameter*> out;
  backbone_->CollectParameters(out);
  head_.CollectParameters(out);
  return out;
}

std::size_t Classifier::ParameterCount() {
  std::size_t n = 0;
  for (const Parameter* p : Parameters()) n += p->value.size();
  return n;
}

void Classifier::ZeroGrad() {
  for (Parameter* p : Parameters()) p->ZeroGrad();
}

void Classifier::ClearCache() {
  backbone_->ClearCache();
  gap_.ClearCache();
  head_.ClearCache();
}

}  // namespace cip::nn
