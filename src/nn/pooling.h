// Pooling layers.
#pragma once

#include <stack>

#include "nn/module.h"

namespace cip::nn {

/// Non-overlapping average pooling with a square window over [N, C, H, W].
/// H and W must be divisible by the window.
class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(std::size_t window, std::string name = "avgpool");

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

 private:
  std::size_t window_;
  std::string name_;
  std::stack<Shape> cached_shapes_;
};

/// Non-overlapping max pooling with a square window over [N, C, H, W].
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::size_t window, std::string name = "maxpool");

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

 private:
  struct Cache {
    Shape in_shape;
    std::vector<std::size_t> argmax;  // flat input index per output element
  };
  std::size_t window_;
  std::string name_;
  std::stack<Cache> cache_;
};

/// Flattens [N, ...] to [N, D]. Identity for rank-2 input.
class Flatten : public Module {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

 private:
  std::string name_;
  std::stack<Shape> cached_shapes_;
};

/// Global average pooling. Maps [N, C, H, W] -> [N, C]; passes [N, D]
/// through unchanged so vector backbones (MLPs) compose with the same heads
/// as convolutional ones.
class GlobalAvgPool : public Module {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : name_(std::move(name)) {}

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  const Tensor& EvalForward(const Tensor& x) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

 private:
  std::string name_;
  std::stack<Shape> cached_shapes_;
};

}  // namespace cip::nn
