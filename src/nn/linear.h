// Fully connected layer: y = x·Wᵀ + b, x: [N, in], W: [out, in], b: [out].
//
// Forward/Backward write into per-layer scratch tensors and (when the product
// is large enough for the blocked GEMM) multiply against a cached pre-packed
// weight, so steady-state calls allocate nothing beyond the returned tensor.
#pragma once

#include <stack>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace cip::nn {

class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         std::string name = "linear");

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  /// Inference forward into the persistent eval buffer: same GEMM core as
  /// Forward (bit-identical), zero allocations once the scratch is warm.
  const Tensor& EvalForward(const Tensor& x) override;
  void CollectParameters(std::vector<Parameter*>& out) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

  /// Input feature dimension (columns of x).
  std::size_t in_features() const { return in_; }
  /// Output feature dimension (rows of W).
  std::size_t out_features() const { return out_; }
  /// Weight parameter W, shape [out_features, in_features].
  Parameter& weight() { return w_; }
  /// Bias parameter b, shape [out_features].
  Parameter& bias() { return b_; }

 private:
  /// Shared Forward/EvalForward core: y = x·Wᵀ + b into caller-owned scratch.
  void ForwardInto(const Tensor& x, Tensor& y);

  std::size_t in_;
  std::size_t out_;
  std::string name_;
  Parameter w_;
  Parameter b_;
  std::stack<Tensor> cached_inputs_;

  // Per-call weight gradient before accumulation into w_.grad; reused across
  // steps (reallocated only on batch-shape change).
  Tensor dw_;

  // Forward weight pre-packed for the blocked GEMM, rebuilt only when
  // w_.value.version() moves (i.e. after an optimizer step) or when the
  // bound GEMM ISA differs from the one it was packed for (per-ISA panel
  // layouts, docs/KERNELS.md).
  ops::PackedB packed_w_;
  std::uint64_t packed_w_version_ = 0;
};

}  // namespace cip::nn
