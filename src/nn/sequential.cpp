#include "nn/sequential.h"

#include "tensor/ops.h"

namespace cip::nn {

Tensor Sequential::Forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& child : children_) h = child->Forward(h, train);
  return h;
}

// CIP_HOT  (serve-path chain: children compute into their own scratch)
const Tensor& Sequential::EvalForward(const Tensor& x) {
  const Tensor* h = &x;
  for (auto& child : children_) h = &child->EvalForward(*h);
  return *h;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::CollectParameters(std::vector<Parameter*>& out) {
  for (auto& child : children_) child->CollectParameters(out);
}

void Sequential::ClearCache() {
  for (auto& child : children_) child->ClearCache();
}

Tensor Residual::Forward(const Tensor& x, bool train) {
  Tensor y = inner_->Forward(x, train);
  CIP_CHECK_MSG(y.SameShape(x),
                name_ << ": inner must preserve shape, got "
                      << ShapeToString(y.shape()) << " from "
                      << ShapeToString(x.shape()));
  ops::AddInPlace(y, x);
  return y;
}

// CIP_HOT  (serve-path residual: copy-assign reuses eval_out_'s capacity)
const Tensor& Residual::EvalForward(const Tensor& x) {
  eval_out_ = inner_->EvalForward(x);
  CIP_CHECK_MSG(eval_out_.SameShape(x),
                name_ << ": inner must preserve shape, got "
                      << ShapeToString(eval_out_.shape()) << " from "
                      << ShapeToString(x.shape()));
  ops::AddInPlace(eval_out_, x);
  return eval_out_;
}

Tensor Residual::Backward(const Tensor& grad_out) {
  Tensor g = inner_->Backward(grad_out);
  ops::AddInPlace(g, grad_out);  // shortcut path
  return g;
}

void Residual::CollectParameters(std::vector<Parameter*>& out) {
  inner_->CollectParameters(out);
}

void Residual::ClearCache() { inner_->ClearCache(); }

Tensor DenseConcat::Forward(const Tensor& x, bool train) {
  CIP_CHECK_EQ(x.rank(), 4u);
  Tensor y = inner_->Forward(x, train);
  CIP_CHECK_EQ(y.rank(), 4u);
  CIP_CHECK_EQ(y.dim(0), x.dim(0));
  CIP_CHECK_EQ(y.dim(2), x.dim(2));
  CIP_CHECK_EQ(y.dim(3), x.dim(3));
  const std::size_t n = x.dim(0), cx = x.dim(1), cy = y.dim(1),
                    hw = x.dim(2) * x.dim(3);
  Tensor out({n, cx + cy, x.dim(2), x.dim(3)});
  for (std::size_t i = 0; i < n; ++i) {
    float* po = out.data() + i * (cx + cy) * hw;
    const float* px = x.data() + i * cx * hw;
    const float* py = y.data() + i * cy * hw;
    std::copy(px, px + cx * hw, po);
    std::copy(py, py + cy * hw, po + cx * hw);
  }
  if (train) cached_channels_.push({cx, cy});
  return out;
}

// CIP_HOT  (serve-path dense block: channel concat into reused scratch)
const Tensor& DenseConcat::EvalForward(const Tensor& x) {
  CIP_CHECK_EQ(x.rank(), 4u);
  const Tensor& y = inner_->EvalForward(x);
  CIP_CHECK_EQ(y.rank(), 4u);
  CIP_CHECK_EQ(y.dim(0), x.dim(0));
  CIP_CHECK_EQ(y.dim(2), x.dim(2));
  CIP_CHECK_EQ(y.dim(3), x.dim(3));
  const std::size_t n = x.dim(0), cx = x.dim(1), cy = y.dim(1),
                    hw = x.dim(2) * x.dim(3);
  EnsureShape(eval_out_, {n, cx + cy, x.dim(2), x.dim(3)});
  float* po_all = eval_out_.data();
  const float* px_all = x.data();
  const float* py_all = y.data();
  for (std::size_t i = 0; i < n; ++i) {
    float* po = po_all + i * (cx + cy) * hw;
    std::copy(px_all + i * cx * hw, px_all + (i + 1) * cx * hw, po);
    std::copy(py_all + i * cy * hw, py_all + (i + 1) * cy * hw, po + cx * hw);
  }
  return eval_out_;
}

Tensor DenseConcat::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cached_channels_.empty(),
                name_ << ": backward without forward");
  const auto [cx, cy] = cached_channels_.top();
  cached_channels_.pop();
  CIP_CHECK_EQ(grad_out.dim(1), cx + cy);
  const std::size_t n = grad_out.dim(0),
                    hw = grad_out.dim(2) * grad_out.dim(3);
  Tensor gx({n, cx, grad_out.dim(2), grad_out.dim(3)});
  Tensor gy({n, cy, grad_out.dim(2), grad_out.dim(3)});
  for (std::size_t i = 0; i < n; ++i) {
    const float* pg = grad_out.data() + i * (cx + cy) * hw;
    std::copy(pg, pg + cx * hw, gx.data() + i * cx * hw);
    std::copy(pg + cx * hw, pg + (cx + cy) * hw, gy.data() + i * cy * hw);
  }
  Tensor g_inner = inner_->Backward(gy);
  ops::AddInPlace(gx, g_inner);
  return gx;
}

void DenseConcat::CollectParameters(std::vector<Parameter*>& out) {
  inner_->CollectParameters(out);
}

void DenseConcat::ClearCache() {
  inner_->ClearCache();
  while (!cached_channels_.empty()) cached_channels_.pop();
}

}  // namespace cip::nn
