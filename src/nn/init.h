// Weight initialization.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace cip::nn {

/// He-normal initialization: N(0, sqrt(2 / fan_in)).
void HeNormal(Tensor& w, std::size_t fan_in, Rng& rng);

/// Uniform in [-bound, bound].
void UniformInit(Tensor& w, float bound, Rng& rng);

}  // namespace cip::nn
