// Single-channel classifier: backbone → global average pool → FC head.
// This is the "legacy model" of the paper (no defense): the same backbones
// the dual-channel CIP model uses, with a normal-width head.
#pragma once

#include <memory>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/pooling.h"

namespace cip::nn {

class Classifier {
 public:
  /// `feature_dim` is the channel (or vector) width of the backbone output.
  Classifier(ModulePtr backbone, std::size_t feature_dim,
             std::size_t num_classes, Rng& rng);

  /// Logits for a batch. `train` caches activations for Backward.
  Tensor Forward(const Tensor& x, bool train);

  /// Inference-only logits, bit-identical to Forward(x, false) but
  /// allocation-free at steady state (every layer computes into persistent
  /// scratch, Module::EvalForward). The returned reference is valid until
  /// the next forward through this model.
  const Tensor& EvalForward(const Tensor& x);

  /// Backprop from dL/dlogits; accumulates parameter grads, returns dL/dx.
  Tensor Backward(const Tensor& dlogits);

  /// All trainable parameters (backbone then head), deterministic order.
  std::vector<Parameter*> Parameters();
  /// Total number of trainable scalars.
  std::size_t ParameterCount();
  /// Zero every parameter's gradient accumulator.
  void ZeroGrad();
  /// Drop pending forward caches (forward passes not followed by backward).
  void ClearCache();

  /// Number of output classes (logit width).
  std::size_t num_classes() const { return num_classes_; }
  /// Channel (or vector) width of the backbone output fed to the head.
  std::size_t feature_dim() const { return feature_dim_; }

 private:
  ModulePtr backbone_;
  GlobalAvgPool gap_;
  std::size_t feature_dim_;
  std::size_t num_classes_;
  Linear head_;
};

}  // namespace cip::nn
