// Backbone factories.
//
// The paper evaluates ResNet-50, DenseNet and VGG backbones plus an MLP for
// Purchase-50. At laptop scale we reproduce the *connectivity families*
// (residual addition, dense concatenation, plain convolution stacks, dense
// MLP) with the same GAP + FC head structure; capacity is set by `width`.
// See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nn/classifier.h"
#include "nn/dual_channel.h"
#include "nn/module.h"

namespace cip::nn {

enum class Arch { kResNet, kDenseNet, kVGG, kMLP };

/// Short lowercase name for an architecture family ("resnet", "vgg", ...).
std::string ArchName(Arch arch);

/// Declarative model description. Clients and server construct identical
/// models from the same spec (same seed => identical initialization).
struct ModelSpec {
  Arch arch = Arch::kResNet;
  Shape input_shape;            ///< per-sample shape: {C, H, W} or {D}
  std::size_t num_classes = 10;
  std::size_t width = 12;       ///< base channel width / hidden-layer scale
  std::uint64_t seed = 1;       ///< weight-init seed
};

struct Backbone {
  ModulePtr module;
  std::size_t feature_dim;  ///< channels (or vector width) of the output
};

/// Build the backbone only (no head). Image archs require H and W divisible
/// by 4 (two pooling stages).
Backbone MakeBackbone(const ModelSpec& spec, Rng& rng);

/// Legacy single-channel model: backbone + GAP + FC.
std::unique_ptr<Classifier> MakeClassifier(const ModelSpec& spec);

/// CIP dual-channel model sharing one backbone (Fig. 3).
std::unique_ptr<DualChannelClassifier> MakeDualChannelClassifier(
    const ModelSpec& spec);

}  // namespace cip::nn
