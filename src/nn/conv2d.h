// 2-D convolution over [N, C, H, W] tensors, implemented with im2col so the
// inner loop is a matmul. Supports stride and symmetric zero padding.
#pragma once

#include <stack>

#include "common/rng.h"
#include "nn/module.h"

namespace cip::nn {

class Conv2d : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         Rng& rng, std::string name = "conv");

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParameters(std::vector<Parameter*>& out) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

  std::size_t out_channels() const { return oc_; }

  /// Spatial output size for an input extent.
  std::size_t OutExtent(std::size_t in) const {
    CIP_CHECK_GE(in + 2 * pad_, k_);
    return (in + 2 * pad_ - k_) / stride_ + 1;
  }

 private:
  /// [C*K*K rows laid out per output position] for one sample.
  Tensor Im2Col(const Tensor& x, std::size_t n_index, std::size_t oh,
                std::size_t ow) const;
  void Col2Im(const Tensor& col, std::size_t oh, std::size_t ow,
              std::size_t h, std::size_t w, Tensor& dx,
              std::size_t n_index) const;

  std::size_t ic_, oc_, k_, stride_, pad_;
  std::string name_;
  Parameter w_;  // [OC, IC*K*K]
  Parameter b_;  // [OC]
  std::stack<Tensor> cached_inputs_;
};

}  // namespace cip::nn
