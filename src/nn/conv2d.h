// 2-D convolution over NCHW ([N, C, H, W]) tensors with stride and symmetric
// zero padding.
//
// Two implementations share one layer:
//  * GEMM path (default, fast): the whole batch is lowered with
//    ops::Im2ColInto into a per-layer scratch matrix, the convolution runs as
//    one cache-blocked GEMM (ops::MatmulTransBInto against the [OC, C·K·K]
//    weight), and the backward pass reuses the same lowering for dW
//    (MatmulTransA), dX (Matmul + Col2Im) and db. Scratch buffers are layer
//    members reused across steps — steady-state training does no per-call
//    allocation beyond the returned output tensor.
//  * Naive path (reference): direct six-nested-loop convolution, selected by
//    the CIP_NAIVE_CONV=1 environment variable (see src/common/env.h) or
//    internal::SetNaiveConvForTesting. tests/test_conv_parity.cpp holds the
//    two paths to agreement within 1e-5.
//
// Threading: Forward/Backward parallelize internally with ParallelFor
// (samples for the lowering/scatter, row blocks inside the GEMM). A Conv2d
// instance is NOT safe to call from two threads at once — the activation
// stack and the scratch buffers are per-instance state. Distinct instances
// are independent.
#pragma once

#include <stack>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace cip::nn {

class Conv2d : public Module {
 public:
  /// Weight layout is [out_channels, in_channels·kernel·kernel] (He-normal
  /// initialized), bias is [out_channels]. Requires kernel, stride >= 1.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         Rng& rng, std::string name = "conv");

  /// x: [N, in_channels, H, W] -> [N, out_channels, OutH, OutW]. When
  /// `train`, pushes x on the activation stack for the matching Backward.
  Tensor Forward(const Tensor& x, bool train) override;
  /// grad_out: [N, out_channels, OutH, OutW] -> gradient w.r.t. the matching
  /// Forward's input; accumulates into the weight/bias .grad tensors.
  Tensor Backward(const Tensor& grad_out) override;
  /// Inference forward into the persistent eval buffer: same GEMM core as
  /// Forward (bit-identical), zero allocations once the scratch is warm.
  const Tensor& EvalForward(const Tensor& x) override;
  void CollectParameters(std::vector<Parameter*>& out) override;
  std::string Name() const override { return name_; }
  void ClearCache() override;

  /// Number of output channels (rows of the [OC, C·K·K] weight matrix).
  std::size_t out_channels() const { return oc_; }

  /// Spatial output size for an input extent: (in + 2·pad − K)/stride + 1.
  std::size_t OutExtent(std::size_t in) const {
    CIP_CHECK_GE(in + 2 * pad_, k_);
    return (in + 2 * pad_ - k_) / stride_ + 1;
  }

 private:
  /// Conv geometry for an input of spatial size h × w.
  ops::Conv2dGeom Geom(std::size_t h, std::size_t w) const {
    return {ic_, h, w, k_, stride_, pad_};
  }

  Tensor ForwardGemm(const Tensor& x, std::size_t n, std::size_t oh,
                     std::size_t ow);
  void ForwardGemmInto(const Tensor& x, std::size_t n, std::size_t oh,
                       std::size_t ow, Tensor& y);
  Tensor ForwardNaive(const Tensor& x, std::size_t n, std::size_t oh,
                      std::size_t ow) const;
  Tensor BackwardGemm(const Tensor& x, const Tensor& grad_out);
  Tensor BackwardNaive(const Tensor& x, const Tensor& grad_out);

  std::size_t ic_, oc_, k_, stride_, pad_;
  std::string name_;
  Parameter w_;  // [OC, IC*K*K]
  Parameter b_;  // [OC]
  std::stack<Tensor> cached_inputs_;

  // GEMM-path scratch, reused across steps (reallocated only on shape
  // change). col_: [N·OH·OW, IC·K·K] batched im2col; gemm_y_: [N·OH·OW, OC]
  // forward product; gy_: [N·OH·OW, OC] grad_out in row-major GEMM layout;
  // dcol_: [N·OH·OW, IC·K·K] column-space input gradient; dw_: [OC, IC·K·K]
  // per-call weight gradient before accumulation.
  Tensor col_, gemm_y_, gy_, dcol_, dw_;

  // Forward weight pre-packed for the blocked GEMM, rebuilt only when
  // w_.value.version() moves (i.e. after an optimizer step) or when the
  // bound GEMM ISA differs from the one it was packed for (panel layouts
  // are per-ISA, docs/KERNELS.md). Keeps the steady-state eval forward
  // free of the per-call packing pass.
  ops::PackedB packed_w_;
  std::uint64_t packed_w_version_ = 0;
};

}  // namespace cip::nn
