#include "nn/pooling.h"

#include <algorithm>

#include "common/check.h"

namespace cip::nn {

namespace {

/// Average-pool one [C·H·W] plane set into [C·OH·OW]; shared by Forward and
/// EvalForward so the two paths are the same arithmetic (bit-identity).
void AvgPoolInto(const float* px_all, float* py_all, std::size_t planes,
                 std::size_t h, std::size_t w, std::size_t window) {
  const std::size_t oh = h / window, ow = w / window;
  const float inv = 1.0f / static_cast<float>(window * window);
  for (std::size_t i = 0; i < planes; ++i) {
    const float* px = px_all + i * h * w;
    float* py = py_all + i * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float s = 0.0f;
        for (std::size_t ky = 0; ky < window; ++ky) {
          for (std::size_t kx = 0; kx < window; ++kx) {
            s += px[(oy * window + ky) * w + ox * window + kx];
          }
        }
        py[oy * ow + ox] = s * inv;
      }
    }
  }
}

/// Max-pool one plane set; records the winning flat index per output element
/// into `argmax` when non-null (training needs it for Backward).
void MaxPoolInto(const float* px_all, float* py_all, std::size_t* argmax,
                 std::size_t planes, std::size_t h, std::size_t w,
                 std::size_t window) {
  const std::size_t oh = h / window, ow = w / window;
  for (std::size_t i = 0; i < planes; ++i) {
    const float* px = px_all + i * h * w;
    float* py = py_all + i * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float best = px[(oy * window) * w + ox * window];
        std::size_t best_idx = (oy * window) * w + ox * window;
        for (std::size_t ky = 0; ky < window; ++ky) {
          for (std::size_t kx = 0; kx < window; ++kx) {
            const std::size_t idx = (oy * window + ky) * w + ox * window + kx;
            if (px[idx] > best) {
              best = px[idx];
              best_idx = idx;
            }
          }
        }
        py[oy * ow + ox] = best;
        if (argmax != nullptr) argmax[i * oh * ow + oy * ow + ox] = best_idx;
      }
    }
  }
}

/// Global-average one [C, HW] plane set into [C].
void GlobalAvgInto(const float* px_all, float* py, std::size_t planes,
                   std::size_t hw) {
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::size_t i = 0; i < planes; ++i) {
    const float* px = px_all + i * hw;
    float s = 0.0f;
    for (std::size_t j = 0; j < hw; ++j) s += px[j];
    py[i] = s * inv;
  }
}

}  // namespace

AvgPool2d::AvgPool2d(std::size_t window, std::string name)
    : window_(window), name_(std::move(name)) {
  CIP_CHECK_GT(window_, 0u);
}

Tensor AvgPool2d::Forward(const Tensor& x, bool train) {
  CIP_CHECK_EQ(x.rank(), 4u);
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  CIP_CHECK_EQ(h % window_, 0u);
  CIP_CHECK_EQ(w % window_, 0u);
  const std::size_t oh = h / window_, ow = w / window_;
  Tensor y({n, c, oh, ow});
  AvgPoolInto(x.data(), y.data(), n * c, h, w, window_);
  if (train) cached_shapes_.push(x.shape());
  return y;
}

// CIP_HOT  (serve-path pooling: scratch-buffer reuse)
const Tensor& AvgPool2d::EvalForward(const Tensor& x) {
  CIP_CHECK_EQ(x.rank(), 4u);
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  CIP_CHECK_EQ(h % window_, 0u);
  CIP_CHECK_EQ(w % window_, 0u);
  EnsureShape(eval_out_, {n, c, h / window_, w / window_});
  AvgPoolInto(x.data(), eval_out_.data(), n * c, h, w, window_);
  return eval_out_;
}

Tensor AvgPool2d::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cached_shapes_.empty(), name_ << ": backward without forward");
  const Shape in_shape = std::move(cached_shapes_.top());
  cached_shapes_.pop();
  const std::size_t n = in_shape[0], c = in_shape[1], h = in_shape[2],
                    w = in_shape[3];
  const std::size_t oh = h / window_, ow = w / window_;
  CIP_DCHECK_EQ(grad_out.size(), n * c * oh * ow);
  Tensor dx(in_shape);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* pg = grad_out.data() + i * oh * ow;
    float* pdx = dx.data() + i * h * w;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float g = pg[oy * ow + ox] * inv;
        for (std::size_t ky = 0; ky < window_; ++ky) {
          for (std::size_t kx = 0; kx < window_; ++kx) {
            pdx[(oy * window_ + ky) * w + ox * window_ + kx] += g;
          }
        }
      }
    }
  }
  return dx;
}

void AvgPool2d::ClearCache() {
  while (!cached_shapes_.empty()) cached_shapes_.pop();
}

MaxPool2d::MaxPool2d(std::size_t window, std::string name)
    : window_(window), name_(std::move(name)) {
  CIP_CHECK_GT(window_, 0u);
}

Tensor MaxPool2d::Forward(const Tensor& x, bool train) {
  CIP_CHECK_EQ(x.rank(), 4u);
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  CIP_CHECK_EQ(h % window_, 0u);
  CIP_CHECK_EQ(w % window_, 0u);
  const std::size_t oh = h / window_, ow = w / window_;
  Tensor y({n, c, oh, ow});
  Cache cache{x.shape(), std::vector<std::size_t>(n * c * oh * ow)};
  MaxPoolInto(x.data(), y.data(), cache.argmax.data(), n * c, h, w, window_);
  if (train) cache_.push(std::move(cache));
  return y;
}

// CIP_HOT  (serve-path pooling: scratch-buffer reuse, no argmax cache)
const Tensor& MaxPool2d::EvalForward(const Tensor& x) {
  CIP_CHECK_EQ(x.rank(), 4u);
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  CIP_CHECK_EQ(h % window_, 0u);
  CIP_CHECK_EQ(w % window_, 0u);
  EnsureShape(eval_out_, {n, c, h / window_, w / window_});
  MaxPoolInto(x.data(), eval_out_.data(), nullptr, n * c, h, w, window_);
  return eval_out_;
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cache_.empty(), name_ << ": backward without forward");
  Cache cache = std::move(cache_.top());
  cache_.pop();
  const std::size_t n = cache.in_shape[0], c = cache.in_shape[1],
                    h = cache.in_shape[2], w = cache.in_shape[3];
  const std::size_t oh = h / window_, ow = w / window_;
  CIP_DCHECK_EQ(grad_out.size(), n * c * oh * ow);
  CIP_DCHECK_EQ(cache.argmax.size(), n * c * oh * ow);
  Tensor dx(cache.in_shape);
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* pg = grad_out.data() + i * oh * ow;
    float* pdx = dx.data() + i * h * w;
    for (std::size_t pos = 0; pos < oh * ow; ++pos) {
      CIP_DCHECK_LT(cache.argmax[i * oh * ow + pos], h * w);
      pdx[cache.argmax[i * oh * ow + pos]] += pg[pos];
    }
  }
  return dx;
}

void MaxPool2d::ClearCache() {
  while (!cache_.empty()) cache_.pop();
}

Tensor Flatten::Forward(const Tensor& x, bool train) {
  CIP_CHECK_GE(x.rank(), 2u);
  if (train) cached_shapes_.push(x.shape());
  const std::size_t n = x.dim(0);
  return x.Reshaped({n, x.size() / std::max<std::size_t>(n, 1)});
}

// CIP_HOT  (serve-path flatten: element copy into reused scratch)
const Tensor& Flatten::EvalForward(const Tensor& x) {
  CIP_CHECK_GE(x.rank(), 2u);
  const std::size_t n = x.dim(0);
  EnsureShape(eval_out_, {n, x.size() / std::max<std::size_t>(n, 1)});
  const float* px = x.data();
  std::copy(px, px + x.size(), eval_out_.data());
  return eval_out_;
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cached_shapes_.empty(), name_ << ": backward without forward");
  const Shape in_shape = std::move(cached_shapes_.top());
  cached_shapes_.pop();
  return grad_out.Reshaped(in_shape);
}

void Flatten::ClearCache() {
  while (!cached_shapes_.empty()) cached_shapes_.pop();
}

Tensor GlobalAvgPool::Forward(const Tensor& x, bool train) {
  if (x.rank() == 2) {
    if (train) cached_shapes_.push(x.shape());
    return x;
  }
  CIP_CHECK_EQ(x.rank(), 4u);
  const std::size_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  GlobalAvgInto(x.data(), y.data(), n * c, hw);
  if (train) cached_shapes_.push(x.shape());
  return y;
}

// CIP_HOT  (serve-path pooling: rank-2 passthrough, rank-4 into scratch)
const Tensor& GlobalAvgPool::EvalForward(const Tensor& x) {
  if (x.rank() == 2) return x;
  CIP_CHECK_EQ(x.rank(), 4u);
  const std::size_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  EnsureShape(eval_out_, {n, c});
  GlobalAvgInto(x.data(), eval_out_.data(), n * c, hw);
  return eval_out_;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_out) {
  CIP_CHECK_MSG(!cached_shapes_.empty(), name_ << ": backward without forward");
  const Shape in_shape = std::move(cached_shapes_.top());
  cached_shapes_.pop();
  if (in_shape.size() == 2) return grad_out;
  const std::size_t n = in_shape[0], c = in_shape[1],
                    hw = in_shape[2] * in_shape[3];
  CIP_CHECK_EQ(grad_out.size(), n * c);
  Tensor dx(in_shape);
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::size_t i = 0; i < n * c; ++i) {
    const float g = grad_out[i] * inv;
    float* pdx = dx.data() + i * hw;
    for (std::size_t j = 0; j < hw; ++j) pdx[j] = g;
  }
  return dx;
}

void GlobalAvgPool::ClearCache() {
  while (!cached_shapes_.empty()) cached_shapes_.pop();
}

}  // namespace cip::nn
