#!/usr/bin/env python3
"""Repo-specific lint for the cipfl codebase.

Rules (see README "Correctness tooling"):
  pragma-once     every .h must start with `#pragma once` (after comments)
  banned-rand     `rand()` / `srand()` are banned — use cip::Rng
  random-device   `std::random_device` is banned (non-deterministic seeding)
  unseeded-rng    constructing a std:: engine without an explicit seed is
                  banned outside src/common/rng.h (the sanctioned wrapper)
  reinterpret     `reinterpret_cast` is banned outside src/fl/serialize.cpp
                  (the audited byte-level (de)serialization boundary) and
                  src/net/socket.cpp (the sockaddr casts the BSD socket ABI
                  requires)
  include-style   no `#include <bits/...>`, no parent-relative includes
  bench-json      committed BENCH_*.json perf baselines at the repo root
                  must parse as JSON (a broken baseline silently disables
                  regression comparison — see docs/BENCHMARKS.md)
  bench-release   committed BENCH_*.json baselines must record
                  host.cip_build_type == "release": numbers from an
                  unoptimized build are meaningless as a regression baseline
  raw-thread      constructing `std::thread` / `std::jthread` is banned
                  outside src/common/parallel.cpp (plus its stress test,
                  which needs an external top-level caller thread) — all
                  parallelism goes through ParallelFor's persistent worker
                  pool so thread creation stays centralized (reading
                  std::thread::hardware_concurrency is fine)
  thread-include  `#include <thread>` / `<mutex>` / `<condition_variable>` /
                  `<shared_mutex>` is banned outside the parallel.cpp
                  allowlist (raw-thread confines construction; this confines
                  the headers themselves, so threading primitives cannot
                  creep in under any spelling). Benchmarks that drive
                  concurrent top-level callers are allowlisted like the
                  stress test.
  intrinsic-include
                  x86 SIMD intrinsic headers (<immintrin.h> and friends)
                  are banned outside the per-ISA GEMM kernel TUs
                  (src/tensor/gemm_avx2.cpp, src/tensor/gemm_avx512.cpp) so
                  raw intrinsics cannot leak past the dispatch boundary —
                  portable code uses GNU vector extensions or scalars, and
                  ISA-specific code stays behind the kernel registry
                  (docs/KERNELS.md)
  socket-include  raw socket headers (<sys/socket.h>, <netinet/*>,
                  <arpa/inet.h>, <poll.h>, <netdb.h>, <sys/un.h>) are banned
                  outside src/net/ — every byte that crosses the network
                  goes through the net/socket.h RAII layer and the framed
                  protocol (docs/PROTOCOL.md), the same confinement idea as
                  reinterpret/intrinsic-include
  rng-ref-param   headers under src/fl and src/core must not declare new
                  `Rng&` parameters: shared mutable RNG streams are what made
                  concurrent client execution racy pre-RoundContext. Client
                  randomness flows through RoundContext::rng (a per-(round,
                  client) value stream); private helpers that thread a local
                  stream live on the allowlist.
  client-vector   owning vectors of FL clients
                  (std::vector<std::unique_ptr<...ClientBase>>) are banned
                  outside ClientStore: the store is the one sanctioned owner
                  of a fleet (fl/client_store.h), so lifecycle, checkpointing
                  and spill policy stay in one place. Non-owning
                  std::vector<ClientBase*> views and vectors of concrete
                  client types remain legal. Allowlist: the store itself
                  and its test.
  doc-comment     WARNING (does not fail the run): public functions declared
                  in src/tensor, src/nn, src/fl, src/core, src/common and
                  src/net headers should carry a doc comment on the
                  preceding line
  doc-link        relative markdown links in README.md and docs/*.md must
                  resolve to files that exist (stale links rot silently;
                  anchors/URLs are not checked)

Exit status: 0 clean, 1 violations found, 2 usage/internal error. Warnings
are printed but never affect the exit status.
`--self-test` seeds one violation per rule into a temp tree and verifies the
linter flags each of them (used as a ctest test so the linter itself cannot
silently rot).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import tempfile

LINT_DIRS = ("src", "tests", "bench", "examples")
SOURCE_SUFFIXES = {".h", ".cpp"}

# Files allowed to break a specific rule, relative to the repo root.
ALLOWLIST = {
    "unseeded-rng": {"src/common/rng.h"},
    # serialize.cpp is the audited byte-level boundary; socket.cpp needs
    # reinterpret_cast for the sockaddr/sockaddr_in puns the BSD socket ABI
    # is defined in terms of (bind/connect/getsockname).
    "reinterpret": {"src/fl/serialize.cpp", "src/net/socket.cpp"},
    # ClientStore is the one sanctioned owner of a ClientBase fleet; its
    # test is the only other place that may hold owning client vectors.
    "client-vector": {
        "src/fl/client_store.h",
        "src/fl/client_store.cpp",
        "tests/test_client_store.cpp",
    },
    # Private helpers that receive the RoundContext's stream by reference
    # (cip_client, perturbation) and the epoch-level training primitive that
    # callers drive with a local stream (trainer). No public round-time API.
    "rng-ref-param": {
        "src/fl/trainer.h",
        "src/core/cip_client.h",
        "src/core/perturbation.h",
    },
    # The worker pool is the single sanctioned thread-creation site in the
    # library. Its own stress test is the one other exception: verifying
    # that concurrent *top-level* parallel regions make progress requires an
    # external caller thread, which the library API cannot produce (anything
    # it launches is nested and runs inline).
    "raw-thread": {"src/common/parallel.cpp", "tests/test_parallel_stress.cpp"},
    # Same confinement at the preprocessor level. The two FL benchmarks
    # drive concurrent top-level callers (pool-busy fallback coverage), so
    # they legitimately stand up their own threads like the stress test.
    "thread-include": {
        "src/common/parallel.cpp",
        "tests/test_parallel_stress.cpp",
        "bench/bench_fault_rounds.cpp",
        "bench/bench_fl_rounds.cpp",
    },
    # The only TUs allowed to see raw x86 intrinsics: the per-ISA GEMM
    # microkernels, compiled with their own -m flags and reached exclusively
    # through the kernel registry (src/tensor/gemm_kernels.h). Even
    # cpu_features.cpp stays off this list — it probes via <cpuid.h> and
    # inline asm precisely so it never needs the intrinsic headers.
    "intrinsic-include": {
        "src/tensor/gemm_avx2.cpp",
        "src/tensor/gemm_avx512.cpp",
    },
}

# Directories skipped by lint_tree entirely. The analyzer fixture corpus
# (tools/cip_analyze.py --self-test) deliberately contains rand(), raw
# threads, <mutex> includes and the like as known-bad inputs; linting it
# would demand violations.
EXCLUDE_DIRS = ("tests/analyze_fixtures",)

RE_COMMENT_LINE = re.compile(r"^\s*(//|\*|/\*)")
RE_BANNED_RAND = re.compile(r"(?<![\w:])s?rand\s*\(")
RE_RANDOM_DEVICE = re.compile(r"\bstd::random_device\b")
# Default-constructed standard RNG engines: `std::mt19937 g;`, `...{}`, `...()`.
RE_UNSEEDED_RNG = re.compile(
    r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+)\b"
    r"\s+\w+\s*(;|\{\s*\}|\(\s*\))"
)
RE_REINTERPRET = re.compile(r"\breinterpret_cast\b")
# An owning vector of FL clients: the base-class unique_ptr element type is
# what marks fleet ownership. Views (ClientBase*) and concrete-type vectors
# (e.g. vector<unique_ptr<ProbeClient>>) deliberately do not match.
RE_CLIENT_VECTOR = re.compile(
    r"std::vector<\s*std::unique_ptr<\s*[\w:]*ClientBase\s*>")
# An `Rng&` function parameter: `Rng& rng,`, `Rng& rng)`, unnamed `Rng&)`.
# Local `Rng&` bindings (`Rng& r = ...`) don't hit a separator and stay legal.
RE_RNG_REF_PARAM = re.compile(r"\bRng\s*&\s*\w*\s*[,)]")
# Directories whose headers define the client-facing FL surface.
RNG_REF_DIRS = ("src/fl/", "src/core/")
RE_BITS_INCLUDE = re.compile(r'#\s*include\s*<bits/')
RE_PARENT_INCLUDE = re.compile(r'#\s*include\s*"\.\./')
# `std::thread` / `std::jthread` the type; the (?!:) lookahead keeps
# `std::thread::hardware_concurrency` legal, and `std::this_thread::...`
# never matches `std::thread` in the first place.
RE_RAW_THREAD = re.compile(r"\bstd::(?:jthread\b|thread\b(?!\s*::))")
RE_THREAD_INCLUDE = re.compile(
    r"#\s*include\s*<(?:thread|mutex|condition_variable|shared_mutex)>")
# The umbrella x86 intrinsic headers plus the per-extension ones they pull
# in; any spelling of "give me _mm*_ intrinsics" should hit this.
RE_INTRINSIC_INCLUDE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|x86gprintrin|xmmintrin|emmintrin|"
    r"pmmintrin|tmmintrin|smmintrin|nmmintrin|wmmintrin|ammintrin|"
    r"avxintrin|avx2intrin|avx512fintrin|fmaintrin)\.h>")
# Raw network headers: the socket(2)/poll(2) surface plus address utilities.
# <sys/resource.h>, <unistd.h> etc. stay legal everywhere — only the
# networking headers are confined.
RE_SOCKET_INCLUDE = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|sys/un\.h|sys/poll\.h|poll\.h|"
    r"netdb\.h|arpa/inet\.h|netinet/[\w.]+)>")
# The one directory allowed to touch raw sockets (see net/socket.h).
SOCKET_INCLUDE_DIR = "src/net/"


# Rules reported as warnings: printed, self-tested, but never fatal.
WARNING_RULES = {"doc-comment"}


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    @property
    def is_warning(self) -> bool:
        return self.rule in WARNING_RULES

    def __str__(self) -> str:
        sev = "warning" if self.is_warning else "error"
        return f"{self.path}:{self.line}: [{self.rule}] {sev}: {self.message}"


def strip_line_comment(line: str) -> str:
    """Drop // comments so commented-out code does not trip content rules."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def check_pragma_once(rel: str, lines: list[str]) -> list[Violation]:
    for i, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or RE_COMMENT_LINE.match(line):
            continue
        if stripped == "#pragma once":
            return []
        return [Violation(rel, i, "pragma-once",
                          "first non-comment line must be `#pragma once`")]
    return [Violation(rel, 1, "pragma-once", "header has no `#pragma once`")]


def check_content(rel: str, lines: list[str]) -> list[Violation]:
    out: list[Violation] = []
    for i, raw in enumerate(lines, start=1):
        line = strip_line_comment(raw)
        if RE_BANNED_RAND.search(line):
            out.append(Violation(rel, i, "banned-rand",
                                 "rand()/srand() banned; use cip::Rng"))
        if RE_RANDOM_DEVICE.search(line):
            out.append(Violation(rel, i, "random-device",
                                 "std::random_device banned; seed cip::Rng "
                                 "explicitly for reproducibility"))
        if rel not in ALLOWLIST["unseeded-rng"] and RE_UNSEEDED_RNG.search(line):
            out.append(Violation(rel, i, "unseeded-rng",
                                 "default-constructed std:: engine; pass an "
                                 "explicit seed (or use cip::Rng)"))
        if rel not in ALLOWLIST["reinterpret"] and RE_REINTERPRET.search(line):
            out.append(Violation(rel, i, "reinterpret",
                                 "reinterpret_cast only allowed in "
                                 "src/fl/serialize.cpp and "
                                 "src/net/socket.cpp"))
        if RE_BITS_INCLUDE.search(line):
            out.append(Violation(rel, i, "include-style",
                                 "never include <bits/...> internals"))
        if RE_PARENT_INCLUDE.search(line):
            out.append(Violation(rel, i, "include-style",
                                 'use project-root-relative includes, not "../"'))
        if (rel not in ALLOWLIST["thread-include"]
                and RE_THREAD_INCLUDE.search(line)):
            out.append(Violation(rel, i, "thread-include",
                                 "<thread>/<mutex> family headers only "
                                 "allowed in src/common/parallel.cpp and "
                                 "its stress/bench drivers; use ParallelFor"))
        if (not rel.startswith(SOCKET_INCLUDE_DIR)
                and RE_SOCKET_INCLUDE.search(line)):
            out.append(Violation(rel, i, "socket-include",
                                 "raw socket/poll headers only allowed under "
                                 "src/net/; speak the framed protocol through "
                                 "net/socket.h and net/frame.h "
                                 "(docs/PROTOCOL.md)"))
        if (rel not in ALLOWLIST["intrinsic-include"]
                and RE_INTRINSIC_INCLUDE.search(line)):
            out.append(Violation(rel, i, "intrinsic-include",
                                 "x86 intrinsic headers only allowed in the "
                                 "per-ISA GEMM kernel TUs (src/tensor/"
                                 "gemm_avx2.cpp, gemm_avx512.cpp); go through "
                                 "the kernel registry (docs/KERNELS.md)"))
        if rel not in ALLOWLIST["raw-thread"] and RE_RAW_THREAD.search(line):
            out.append(Violation(rel, i, "raw-thread",
                                 "raw std::thread/std::jthread construction "
                                 "only allowed in src/common/parallel.cpp; "
                                 "use ParallelFor / ParallelForCoarse"))
        if (rel not in ALLOWLIST["client-vector"]
                and RE_CLIENT_VECTOR.search(line)):
            out.append(Violation(rel, i, "client-vector",
                                 "owning std::vector<std::unique_ptr<"
                                 "ClientBase>> outside ClientStore; register "
                                 "clients with a live store's Add() or build "
                                 "a cold store (fl/client_store.h)"))
        if (rel.endswith(".h") and rel.startswith(RNG_REF_DIRS)
                and rel not in ALLOWLIST["rng-ref-param"]
                and RE_RNG_REF_PARAM.search(line)):
            out.append(Violation(rel, i, "rng-ref-param",
                                 "new `Rng&` parameter in a client-facing "
                                 "header; take randomness from "
                                 "RoundContext::rng instead"))
    return out


# Headers whose public functions must carry doc comments (the numeric core
# plus the federated surface: shape contracts, layout, threading and
# determinism guarantees live in these comments).
DOC_COMMENT_DIRS = ("src/tensor/", "src/nn/", "src/fl/", "src/core/",
                    "src/common/", "src/net/", "src/serve/")

# A function declaration/definition opener: optional specifiers, a return
# type containing at least one type-ish token, a name, an open paren. Control
# flow, macros and assignments are filtered out separately.
RE_FUNC_OPEN = re.compile(
    r"^\s{0,4}(?:template\s*<[^>]*>\s*)?"
    r"(?:virtual\s+|static\s+|explicit\s+|inline\s+|constexpr\s+|friend\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<[^;()]*>)?[&*\s]+"          # return type
    r"~?[A-Za-z_]\w*\s*\("                               # name(
)
RE_NOT_FUNC = re.compile(
    r"^\s*(?:if|for|while|switch|return|throw|else|do|case|using|typedef|"
    r"namespace|CIP_\w+|EXPECT_\w+|ASSERT_\w+|TEST)\b"
)
RE_DOC_LINE = re.compile(r"^\s*(///|//|\*|/\*|\*/)")
RE_ACCESS_SPEC = re.compile(r"^\s*(public|private|protected)\s*:")


def check_doc_comments(rel: str, lines: list[str]) -> list[Violation]:
    """Warn on function declarations in core headers with no comment above.

    Heuristic, by design: it tracks private:/protected: sections (skipped)
    and flags declaration openers whose preceding non-blank line is neither a
    comment nor an access specifier. Lines indented more than one level are
    taken to be statements inside an inline body rather than declarations.
    """
    if not any(rel.startswith(d) for d in DOC_COMMENT_DIRS):
        return []
    out: list[Violation] = []
    visible = True  # inside a public/namespace-scope region
    history: list[str] = []  # prior non-blank lines, most recent last

    def doc_anchor_for() -> str:
        # A standalone `template <...>` line or an `[[attribute]]` (possibly
        # wrapped, e.g. a two-line [[deprecated("...")]]) sits between a doc
        # comment and the declaration it documents; look through them.
        for past in reversed(history):
            if (re.match(r"^\s*template\s*<", past)
                    or re.match(r"^\s*\[\[", past)
                    or past.rstrip().endswith(")]]")):
                continue
            return past
        return ""

    for i, raw in enumerate(lines, start=1):
        if not raw.strip():
            continue  # blank lines do not reset the doc-comment association
        line = strip_line_comment(raw).rstrip()
        if RE_ACCESS_SPEC.match(raw):
            visible = RE_ACCESS_SPEC.match(raw).group(1) == "public"
            history.append(raw)
            continue
        doc_anchor = doc_anchor_for()
        if (visible and RE_FUNC_OPEN.match(line)
                and not RE_NOT_FUNC.match(line)
                and "=" not in line.split("(")[0]
                # `override` members inherit the base declaration's contract.
                and not re.search(r"\boverride\b", line)
                and not RE_DOC_LINE.match(doc_anchor)
                and not RE_ACCESS_SPEC.match(doc_anchor)):
            name = line.split("(")[0].strip().split()[-1]
            out.append(Violation(
                rel, i, "doc-comment",
                f"public function `{name}` has no doc comment on the "
                "preceding line (document shape/layout/threading contracts)"))
        history.append(raw)
    return out


# A markdown link/image target: `[text](target)`. Good enough for this
# repo's docs; no reference-style links are used.
RE_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Targets the doc-link rule does not try to resolve.
RE_MD_EXTERNAL = re.compile(r"^(https?://|mailto:|#)")


def check_doc_links(root: pathlib.Path) -> list[Violation]:
    """Relative links in README.md and docs/*.md must point at real files."""
    out: list[Violation] = []
    pages = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    for page in pages:
        if not page.is_file():
            continue
        rel = page.relative_to(root).as_posix()
        in_code_fence = False
        for i, line in enumerate(
                page.read_text(encoding="utf-8").splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for m in RE_MD_LINK.finditer(line):
                target = m.group(1)
                if RE_MD_EXTERNAL.match(target):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                if not (page.parent / path_part).exists():
                    out.append(Violation(
                        rel, i, "doc-link",
                        f"link target `{target}` does not resolve "
                        f"(relative to {page.parent.relative_to(root).as_posix() or '.'}/)"))
    return out


def check_bench_json(root: pathlib.Path) -> list[Violation]:
    """BENCH_*.json at the repo root must parse and come from Release builds.

    Every baseline document records host.cip_build_type (the emitting binary
    stamps it from NDEBUG); anything other than "release" — including a
    missing key, which means the baseline predates the stamp — is rejected so
    unoptimized numbers can never become the regression reference.
    """
    out: list[Violation] = []
    for path in sorted(root.glob("BENCH_*.json")):
        rel = path.name
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as e:
            out.append(Violation(rel, 1, "bench-json",
                                 f"perf baseline does not parse: {e}"))
            continue
        build_type = doc.get("host", {}).get("cip_build_type") \
            if isinstance(doc, dict) else None
        if build_type != "release":
            out.append(Violation(
                rel, 1, "bench-release",
                f"baseline records host.cip_build_type={build_type!r}, not "
                "'release'; regenerate with scripts/bench_baseline.sh "
                "(Release build)"))
    return out


def lint_file(root: pathlib.Path, path: pathlib.Path) -> list[Violation]:
    rel = path.relative_to(root).as_posix()
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as e:
        return [Violation(rel, 1, "io", f"unreadable: {e}")]
    out: list[Violation] = []
    if path.suffix == ".h":
        out += check_pragma_once(rel, lines)
        out += check_doc_comments(rel, lines)
    out += check_content(rel, lines)
    return out


def lint_tree(root: pathlib.Path) -> list[Violation]:
    violations: list[Violation] = []
    for d in LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if any(rel.startswith(ex + "/") for ex in EXCLUDE_DIRS):
                continue
            violations += lint_file(root, path)
    violations += check_bench_json(root)
    violations += check_doc_links(root)
    return violations


SELF_TEST_CASES = {
    "pragma-once": "src/bad_header.h",
    "banned-rand": "src/uses_rand.cpp",
    "random-device": "src/uses_rd.cpp",
    "unseeded-rng": "src/unseeded.cpp",
    "reinterpret": "src/casts.cpp",
    "include-style": "src/bad_include.cpp",
    "doc-comment": "src/tensor/undocumented.h",
    "bench-json": "BENCH_broken.json",
    "bench-release": "BENCH_debug.json",
    "rng-ref-param": "src/fl/bad_rng_param.h",
    "client-vector": "src/eval/owns_clients.cpp",
    "raw-thread": "src/spawns_thread.cpp",
    "thread-include": "src/includes_mutex.cpp",
    "intrinsic-include": "src/nn/includes_immintrin.cpp",
    "socket-include": "src/fl/includes_socket.cpp",
    "doc-link": "docs/bad_links.md",
}

# Allowlisted paths seeded into the self-test tree that must produce zero
# violations despite containing otherwise-banned constructs (the "clean"
# filename convention can't apply: allowlists match these exact paths).
SELF_TEST_ALLOWLISTED = {
    "src/tensor/gemm_avx2.cpp",
    "src/fl/client_store.cpp",
}

SELF_TEST_SOURCES = {
    "src/bad_header.h": "#include <cstddef>\nint f();\n",
    "src/uses_rand.cpp": "int noise() { return rand() % 7; }\n",
    "src/uses_rd.cpp": "#include <random>\nunsigned s() { std::random_device rd; return rd(); }\n",
    "src/unseeded.cpp": "#include <random>\nvoid g() { std::mt19937_64 eng; (void)eng; }\n",
    "src/casts.cpp": "long p(void* v) { return *reinterpret_cast<long*>(v); }\n",
    "src/bad_include.cpp": '#include "../outside.h"\n',
    "src/tensor/undocumented.h": "#pragma once\nfloat Undocumented(int x);\n",
    "BENCH_broken.json": "{this is not json\n",
    "BENCH_debug.json":
        '{"schema": "cip-bench-kernels/v1", '
        '"host": {"cip_build_type": "debug"}}\n',
    "src/fl/bad_rng_param.h":
        "#pragma once\nvoid TrainThing(int epochs, Rng& rng);\n",
    # Owning client vectors outside ClientStore must be flagged, in any
    # namespace qualification of the element type...
    "src/eval/owns_clients.cpp":
        "void Fleet() {\n"
        "  std::vector<std::unique_ptr<fl::ClientBase>> clients;\n"
        "  std::vector<std::unique_ptr<cip::fl::ClientBase>> more;\n"
        "}\n",
    # ...while the store itself (allowlisted owner), non-owning pointer
    # views, and concrete-type vectors all stay clean.
    "src/fl/client_store.cpp":
        "std::vector<std::unique_ptr<ClientBase>> owned_;\n",
    "src/fl/client_views_clean.cpp":
        "void Views() {\n"
        "  std::vector<fl::ClientBase*> ptrs;\n"
        "  std::vector<std::unique_ptr<ProbeClient>> probes;\n"
        "}\n",
    "src/spawns_thread.cpp":
        "#include <thread>\n"
        "void Race() { std::jthread w([] {}); std::thread t([] {}); "
        "t.join(); }\n",
    # And clean files that must NOT be flagged.
    "src/clean.cpp": "#include <random>\nvoid h() { std::mt19937_64 eng(42); (void)eng; }\n",
    "src/tensor/documented_clean.h":
        "#pragma once\n"
        "/// Shape contract: returns x doubled.\n"
        "float Documented(int x);\n"
        "class Foo {\n"
        " public:\n"
        "  /// Doc.\n"
        "  void Bar();\n"
        " private:\n"
        "  void NoDocNeededHere();\n"
        "};\n",
    # A doc comment above a standalone `template <...>` line documents the
    # declaration below it.
    "src/tensor/template_doc_clean.h":
        "#pragma once\n"
        "/// Doc: applies f to each element.\n"
        "template <typename F>\n"
        "void ForEach(F f);\n",
    "BENCH_clean.json":
        '{"schema": "cip-bench-kernels/v1", '
        '"host": {"cip_build_type": "release"}}\n',
    "src/includes_mutex.cpp":
        "#include <mutex>\n"
        "void Locked() {}\n",
    # Intrinsic headers outside the kernel TUs must be flagged under any of
    # the umbrella/per-extension spellings...
    "src/nn/includes_immintrin.cpp":
        "#include <immintrin.h>\n"
        "#include <x86intrin.h>\n"
        "#include <avx512fintrin.h>\n"
        "void Fast() {}\n",
    # ...while the allowlisted kernel TU itself stays clean.
    "src/tensor/gemm_avx2.cpp":
        "#include <immintrin.h>\n"
        "void Kernel() {}\n",
    # Raw socket/poll headers outside src/net must be flagged under every
    # confined spelling...
    "src/fl/includes_socket.cpp":
        "#include <sys/socket.h>\n"
        "#include <netinet/tcp.h>\n"
        "#include <arpa/inet.h>\n"
        "#include <poll.h>\n"
        "void Dial() {}\n",
    # ...while src/net itself, and the *unconfined* POSIX headers anywhere
    # (<sys/resource.h> is how benches read peak RSS), stay clean.
    "src/net/sockets_allowed_clean.cpp":
        "#include <sys/socket.h>\n"
        "#include <netinet/in.h>\n"
        "#include <poll.h>\n"
        "void Listen() {}\n",
    "src/fl/resource_header_clean.cpp":
        "#include <sys/resource.h>\n"
        "void Rss() {}\n",
    # The src/net doc-comment extension must flag undocumented net headers.
    "src/net/undocumented.h": "#pragma once\nfloat NetUndocumented(int x);\n",
    # Reading hardware_concurrency or using std::this_thread is not
    # thread *construction* and stays legal everywhere (no <thread> include
    # here: the declaration is reachable via the sanctioned parallel.h).
    "src/thread_query_clean.cpp":
        "unsigned Hw() { return std::thread::hardware_concurrency(); }\n"
        "void Nap() { std::this_thread::yield(); }\n",
    # The analyzer fixture corpus is excluded from linting wholesale: this
    # file is full of violations but must produce zero hits.
    "tests/analyze_fixtures/seeded_violations_clean.cpp":
        "#include <thread>\n#include <mutex>\n"
        "int noise() { return rand() % 7; }\n",
    # Rng& is fine outside src/fl and src/core headers (data/nn/attacks keep
    # explicit stream-passing), in .cpp files, and as a local binding.
    "src/data/rng_param_clean.h":
        "#pragma once\nvoid SampleThing(int n, Rng& rng);\n",
    "src/fl/rng_local_clean.h":
        "#pragma once\n/// Doc (fl headers need doc comments too).\n"
        "inline int F(RoundContext& ctx) {\n"
        "  Rng& rng = ctx.rng;\n  return rng.NextU64() & 1;\n}\n",
    # The fl/core doc-comment extension must flag undocumented fl headers.
    "src/fl/undocumented.h": "#pragma once\nfloat AlsoUndocumented(int x);\n",
    # Doc links: a dangling relative target must be flagged; resolvable
    # relative targets, anchors, URLs and fenced code blocks must not.
    "docs/bad_links.md":
        "See [the missing page](no_such_file.md) for details.\n",
    "docs/clean_links.md":
        "A [sibling](bad_links.md), a [parent file](../README.md), an\n"
        "[anchor](#section), a [URL](https://example.com/x.md), and\n"
        "```\n[not a link](inside_code_fence.md)\n```\n",
    "README.md": "Root page: [docs](docs/clean_links.md).\n",
}


def self_test() -> int:
    with tempfile.TemporaryDirectory(prefix="cip_lint_selftest_") as tmp:
        root = pathlib.Path(tmp)
        for rel, content in SELF_TEST_SOURCES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
        violations = lint_tree(root)
        rules_hit = {v.rule for v in violations}
        ok = True
        for rule, rel in SELF_TEST_CASES.items():
            if rule not in rules_hit:
                print(f"self-test FAIL: rule {rule} missed seeded violation in {rel}")
                ok = False
        clean_hits = [str(v) for v in violations
                      if "clean" in pathlib.Path(v.path).name
                      or v.path in SELF_TEST_ALLOWLISTED]
        if clean_hits:
            print(f"self-test FAIL: false positives on clean file: {clean_hits}")
            ok = False
        print("self-test OK" if ok else "self-test FAILED")
        return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter detects seeded violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"cip_lint: {root} does not look like the repo root", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    errors = [v for v in violations if not v.is_warning]
    warnings = [v for v in violations if v.is_warning]
    for v in errors + warnings:
        print(v)
    if warnings:
        print(f"cip_lint: {len(warnings)} warning(s) (non-fatal)")
    if errors:
        print(f"cip_lint: {len(errors)} violation(s)")
        return 1
    print("cip_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
