#!/usr/bin/env python3
"""Run the kernel micro-benchmarks and emit the BENCH_kernels.json baseline.

Runs ``bench_micro_ops`` (google-benchmark) once per requested CIP_THREADS
value with ``--benchmark_format=json``, extracts per-benchmark wall time and
throughput, computes the naive-vs-GEMM convolution speedups, and writes a
single merged JSON document. Fields are documented in docs/BENCHMARKS.md.

Usage:
    tools/bench_to_json.py --binary build/bench/bench_micro_ops \
        --output BENCH_kernels.json [--threads 1 4] [--filter REGEX]

The script has no dependencies beyond the standard library. It fails loudly
(non-zero exit) if the benchmark binary is missing, a run fails, or an
expected conv benchmark is absent from the output.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys

SCHEMA = "cip-bench-kernels/v2"

# (fast benchmark, reference benchmark) pairs whose time ratio is recorded
# under "speedups". BM_Conv2dForward (vs the naive convolution) and
# BM_Matmul/64 (persistent pool vs spawn-per-call dispatch) are the
# acceptance-gated ones.
SPEEDUP_PAIRS = [
    ("BM_Conv2dForward", "BM_Conv2dForwardNaive"),
    ("BM_Conv2dBackward", "BM_Conv2dBackwardNaive"),
    ("BM_Matmul/64", "BM_MatmulSpawn/64"),
    ("BM_Matmul/32", "BM_MatmulSpawn/32"),
    ("BM_ParallelForDispatch", "BM_ParallelForDispatchSpawn"),
]

# Performance floors (docs/BENCHMARKS.md). Checked only for thread counts
# that were actually run; --no-gate skips them. The BM_Matmul/64 floor gates
# the worker pool's dispatch overhead against spawn-per-call threading.
SPEEDUP_GATES = [
    ("BM_Conv2dForwardNaive/BM_Conv2dForward", "threads=4", 3.0),
    ("BM_Conv2dForwardNaive/BM_Conv2dForward", "threads=1", 1.5),
    ("BM_MatmulSpawn/64/BM_Matmul/64", "threads=4", 1.3),
]

# Absolute throughput floors in GMAC/s, enforced only when the run bound a
# SIMD kernel (host.isa != "portable"): 21.1 is 3x the last portable-kernel
# BM_Matmul/256 single-thread baseline (7.039 GMAC/s), the acceptance floor
# for the ISA-dispatched microkernels. Portable-forced runs skip these —
# the portable kernel is the 1x reference, not the thing being gated.
SIMD_GMACS_GATES = [
    ("BM_Matmul/256", "threads=1", 21.1),
]

# Acceptance gates for the committed BENCH_scale.json baseline
# (bench_scale: million-client ClientStore simulation). The RSS ceiling pins
# the O(hot budget + cohort) memory claim; the rounds/sec floor keeps the
# sampled round path from regressing into something unusably slow.
SCALE_SCHEMA = "cip-bench-scale/v1"
SCALE_MIN_REGISTERED = 1_000_000
SCALE_MIN_COHORT = 1000
SCALE_MIN_ROUNDS = 5
SCALE_MAX_PEAK_RSS_BYTES = 512 << 20
SCALE_MIN_ROUNDS_PER_SECOND = 0.05

# Acceptance gates for the committed BENCH_server.json baseline
# (bench_server: 1k concurrent loopback connections through the socket
# server). The shape gates pin what the run must have exercised — a quorum
# strictly below the fleet (the asynchronous close path), stragglers folded
# across round boundaries, and admission overflow answered with kBusy — and
# the wire run must stay bit-identical to the direct engine feed.
SERVER_SCHEMA = "cip-bench-server/v1"
SERVER_MIN_CLIENTS = 1000
SERVER_MIN_ROUNDS = 20
SERVER_MAX_PEAK_RSS_BYTES = 256 << 20
SERVER_MIN_ROUNDS_PER_SECOND = 1.0


def check_server(path: pathlib.Path) -> int:
    """Validate a committed BENCH_server.json against the load-bench gates."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read server baseline {path}: {exc}")

    failures = []

    def need(cond: bool, msg: str) -> None:
        if not cond:
            failures.append(msg)

    need(doc.get("schema") == SERVER_SCHEMA,
         f"schema {doc.get('schema')!r} != {SERVER_SCHEMA!r}")
    build = doc.get("host", {}).get("cip_build_type")
    need(build == "release",
         f"cip_build_type {build!r} != 'release' — regenerate via "
         "scripts/bench_baseline.sh")
    setup = doc.get("setup", {})
    need(setup.get("clients", 0) >= SERVER_MIN_CLIENTS,
         f"clients {setup.get('clients')} < {SERVER_MIN_CLIENTS}")
    need(0 < setup.get("quorum", 0) < setup.get("clients", 0),
         f"quorum {setup.get('quorum')} not in (0, clients) — the async "
         "close path was never exercised")
    need(setup.get("rounds", 0) >= SERVER_MIN_ROUNDS,
         f"rounds {setup.get('rounds')} < {SERVER_MIN_ROUNDS}")
    need(doc.get("determinism", {}).get("bit_identical") is True,
         "determinism.bit_identical is not true")
    server = doc.get("server", {})
    stats = server.get("stats", {})
    need(stats.get("rounds_completed") == setup.get("rounds"),
         f"rounds_completed {stats.get('rounds_completed')} != configured "
         f"rounds {setup.get('rounds')}")
    need(stats.get("protocol_errors", 1) == 0,
         f"protocol_errors {stats.get('protocol_errors')} != 0 on a clean run")
    need(stats.get("busy_rejections", 0) > 0,
         "busy_rejections == 0 — admission control was never exercised")
    need(stats.get("folded_stragglers", 0) > 0,
         "folded_stragglers == 0 — no update ever crossed a round boundary")
    need(server.get("rounds_per_second", 0.0) >= SERVER_MIN_ROUNDS_PER_SECOND,
         f"rounds_per_second {server.get('rounds_per_second')} < "
         f"{SERVER_MIN_ROUNDS_PER_SECOND}")
    p50 = server.get("round_latency_p50_ms", 0.0)
    p99 = server.get("round_latency_p99_ms", 0.0)
    need(0 < p50 <= p99,
         f"round latency p50 {p50} / p99 {p99} not 0 < p50 <= p99")
    need(0 < server.get("peak_rss_bytes", 0) <= SERVER_MAX_PEAK_RSS_BYTES,
         f"peak_rss_bytes {server.get('peak_rss_bytes')} outside "
         f"(0, {SERVER_MAX_PEAK_RSS_BYTES}]")

    if failures:
        raise SystemExit(f"server gate FAILED for {path}:\n  " +
                         "\n  ".join(failures))
    print(f"[bench_to_json] server gates passed for {path}", file=sys.stderr)
    return 0


SERVE_SCHEMA = "cip-bench-serve/v1"
SERVE_MIN_THREADS = 4
SERVE_MIN_CLIENTS = 128
SERVE_MIN_BATCH_ROWS = 128
SERVE_MIN_FUSED_SPEEDUP = 4.0
SERVE_MIN_WARM_HIT_RATE = 0.99


def check_serve(path: pathlib.Path) -> int:
    """Validate a committed BENCH_serve.json against the serving gates."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read serve baseline {path}: {exc}")

    failures = []

    def need(cond: bool, msg: str) -> None:
        if not cond:
            failures.append(msg)

    need(doc.get("schema") == SERVE_SCHEMA,
         f"schema {doc.get('schema')!r} != {SERVE_SCHEMA!r}")
    host = doc.get("host", {})
    need(host.get("cip_build_type") == "release",
         f"cip_build_type {host.get('cip_build_type')!r} != 'release' — "
         "regenerate via scripts/bench_baseline.sh")
    need(host.get("num_threads", 0) >= SERVE_MIN_THREADS,
         f"num_threads {host.get('num_threads')} < {SERVE_MIN_THREADS} — "
         "the fused-batch gate is defined at CIP_THREADS=4")
    setup = doc.get("setup", {})
    need(setup.get("clients", 0) >= SERVE_MIN_CLIENTS,
         f"clients {setup.get('clients')} < {SERVE_MIN_CLIENTS} — a full "
         "fused batch must mix distinct clients")
    need(setup.get("max_batch_rows", 0) >= SERVE_MIN_BATCH_ROWS,
         f"max_batch_rows {setup.get('max_batch_rows')} < "
         f"{SERVE_MIN_BATCH_ROWS}")
    tcache = doc.get("tcache", {})
    need(tcache.get("warm_hit_rate", 0.0) >= SERVE_MIN_WARM_HIT_RATE,
         f"warm_hit_rate {tcache.get('warm_hit_rate')} < "
         f"{SERVE_MIN_WARM_HIT_RATE}")
    need(tcache.get("warm_queries_per_second", 0.0) >
         tcache.get("cold_queries_per_second", 0.0),
         "warm t-cache is not faster than cold materialization")
    serve = doc.get("serve", {})
    need(serve.get("alloc_free_steady_state") is True,
         "serve.alloc_free_steady_state is not true")
    need(serve.get("wire_bit_identical") is True,
         "serve.wire_bit_identical is not true")
    need(serve.get("fused_speedup_128_vs_1", 0.0) >= SERVE_MIN_FUSED_SPEEDUP,
         f"fused_speedup_128_vs_1 {serve.get('fused_speedup_128_vs_1')} < "
         f"{SERVE_MIN_FUSED_SPEEDUP}")
    batches = serve.get("batches", [])
    need({b.get("batch") for b in batches} >= {1, 16, 128},
         "batches must cover batch sizes 1, 16 and 128")
    for b in batches:
        p50, p99 = b.get("p50_ms", 0.0), b.get("p99_ms", 0.0)
        need(0 < p50 <= p99,
             f"batch {b.get('batch')} latency p50 {p50} / p99 {p99} not "
             "0 < p50 <= p99")
        need(b.get("queries_per_second", 0.0) > 0,
             f"batch {b.get('batch')} queries_per_second not positive")

    if failures:
        raise SystemExit(f"serve gate FAILED for {path}:\n  " +
                         "\n  ".join(failures))
    print(f"[bench_to_json] serve gates passed for {path}", file=sys.stderr)
    return 0


def check_scale(path: pathlib.Path) -> int:
    """Validate a committed BENCH_scale.json against the scale gates."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read scale baseline {path}: {exc}")

    failures = []

    def need(cond: bool, msg: str) -> None:
        if not cond:
            failures.append(msg)

    need(doc.get("schema") == SCALE_SCHEMA,
         f"schema {doc.get('schema')!r} != {SCALE_SCHEMA!r}")
    build = doc.get("host", {}).get("cip_build_type")
    need(build == "release",
         f"cip_build_type {build!r} != 'release' — regenerate via "
         "scripts/bench_baseline.sh")
    setup = doc.get("setup", {})
    need(setup.get("registered_clients", 0) >= SCALE_MIN_REGISTERED,
         f"registered_clients {setup.get('registered_clients')} < "
         f"{SCALE_MIN_REGISTERED}")
    need(setup.get("cohort", 0) >= SCALE_MIN_COHORT,
         f"cohort {setup.get('cohort')} < {SCALE_MIN_COHORT}")
    need(setup.get("rounds", 0) >= SCALE_MIN_ROUNDS,
         f"rounds {setup.get('rounds')} < {SCALE_MIN_ROUNDS}")
    need(doc.get("determinism", {}).get("bit_identical") is True,
         "determinism.bit_identical is not true")
    scale = doc.get("scale", {})
    need(0 < scale.get("peak_rss_bytes", 0) <= SCALE_MAX_PEAK_RSS_BYTES,
         f"peak_rss_bytes {scale.get('peak_rss_bytes')} outside "
         f"(0, {SCALE_MAX_PEAK_RSS_BYTES}]")
    need(scale.get("rounds_per_second", 0.0) >= SCALE_MIN_ROUNDS_PER_SECOND,
         f"rounds_per_second {scale.get('rounds_per_second')} < "
         f"{SCALE_MIN_ROUNDS_PER_SECOND}")
    need(scale.get("store", {}).get("spills", 0) > 0,
         "store.spills == 0 — the hot-byte budget was never exercised")

    if failures:
        raise SystemExit(f"scale gate FAILED for {path}:\n  " +
                         "\n  ".join(failures))
    print(f"[bench_to_json] scale gates passed for {path}", file=sys.stderr)
    return 0


def run_benchmarks(binary: pathlib.Path, threads: int, bench_filter: str,
                   min_time: float) -> dict:
    """Run the binary at a given CIP_THREADS and return parsed JSON."""
    env = dict(os.environ)
    env["CIP_THREADS"] = str(threads)
    cmd = [
        str(binary),
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    print(f"[bench_to_json] CIP_THREADS={threads} {' '.join(cmd)}",
          file=sys.stderr)
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(
            f"benchmark run failed (exit {proc.returncode}) at "
            f"CIP_THREADS={threads}")
    return json.loads(proc.stdout)


def summarize(raw: dict) -> dict:
    """Flatten google-benchmark JSON into {name: {time_ms, ...}}."""
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "time_ms": round(b["real_time"] / 1e6, 4)
            if b.get("time_unit") == "ns" else b["real_time"],
            "cpu_ms": round(b["cpu_time"] / 1e6, 4)
            if b.get("time_unit") == "ns" else b["cpu_time"],
            "iterations": b.get("iterations"),
        }
        # items_per_second is MACs/s for the matmul/conv benches.
        if "items_per_second" in b:
            entry["gmacs_per_s"] = round(b["items_per_second"] / 1e9, 3)
        out[b["name"]] = entry
    return out


def compute_speedups(per_run: dict) -> dict:
    """naive_time / gemm_time per SPEEDUP_PAIRS entry and thread count."""
    speedups = {}
    for gemm, naive in SPEEDUP_PAIRS:
        per_threads = {}
        for key, benches in per_run.items():
            if gemm not in benches or naive not in benches:
                continue
            g, n = benches[gemm]["time_ms"], benches[naive]["time_ms"]
            if g > 0:
                per_threads[key] = round(n / g, 2)
        if per_threads:
            speedups[f"{naive}/{gemm}"] = per_threads
    return speedups


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", type=pathlib.Path,
                    default=pathlib.Path("build/bench/bench_micro_ops"))
    ap.add_argument("--output", type=pathlib.Path,
                    default=pathlib.Path("BENCH_kernels.json"))
    ap.add_argument("--threads", type=int, nargs="+", default=[1, 4],
                    help="CIP_THREADS values to benchmark (one run each)")
    ap.add_argument("--filter",
                    default="BM_(Matmul|MatmulTransB|Conv2d|Im2Col|ParallelFor)",
                    help="--benchmark_filter regex (kernel + dispatch benches "
                         "only by default; pass '' for the full suite)")
    ap.add_argument("--min-time", type=float, default=0.5,
                    help="--benchmark_min_time per case, in seconds")
    ap.add_argument("--no-gate", action="store_true",
                    help="skip the GEMM-vs-naive speedup floors (useful on "
                         "loaded machines or for exploratory runs)")
    ap.add_argument("--allow-debug", action="store_true",
                    help="emit a baseline even from a non-Release binary "
                         "(exploratory only; never commit such a baseline)")
    ap.add_argument("--check-scale", type=pathlib.Path, metavar="JSON",
                    help="validate a committed BENCH_scale.json (bench_scale "
                         "output) against the million-client scale gates and "
                         "exit; no benchmarks are run")
    ap.add_argument("--check-server", type=pathlib.Path, metavar="JSON",
                    help="validate a committed BENCH_server.json "
                         "(bench_server output) against the 1k-connection "
                         "load gates and exit; no benchmarks are run")
    ap.add_argument("--check-serve", type=pathlib.Path, metavar="JSON",
                    help="validate a committed BENCH_serve.json "
                         "(bench_serve output) against the serving-engine "
                         "gates and exit; no benchmarks are run")
    args = ap.parse_args()

    if args.check_scale is not None:
        return check_scale(args.check_scale)
    if args.check_server is not None:
        return check_server(args.check_server)
    if args.check_serve is not None:
        return check_serve(args.check_serve)

    if not args.binary.exists():
        raise SystemExit(
            f"benchmark binary not found: {args.binary}\n"
            "build it first: cmake -B build -S . && "
            "cmake --build build --target bench_micro_ops")

    per_run = {}
    context = None
    for t in args.threads:
        raw = run_benchmarks(args.binary, t, args.filter, args.min_time)
        per_run[f"threads={t}"] = summarize(raw)
        context = context or raw.get("context", {})

    # Numbers from an unoptimized build are meaningless as a baseline: refuse
    # to emit one. The binary stamps its own build type into the context
    # (bench_micro_ops main); note that google-benchmark's library_build_type
    # describes the *library* build, not ours, so it is not consulted.
    build_type = (context or {}).get("cip_build_type", "unknown")
    if build_type != "release" and not args.allow_debug:
        raise SystemExit(
            f"refusing to emit a baseline from a non-Release binary "
            f"(cip_build_type={build_type!r}). Rebuild with "
            "-DCMAKE_BUILD_TYPE=Release (scripts/bench_baseline.sh does), or "
            "pass --allow-debug for a throwaway run.")

    for gemm, naive in SPEEDUP_PAIRS:
        for key, benches in per_run.items():
            for name in (gemm, naive):
                if name not in benches:
                    raise SystemExit(
                        f"expected benchmark {name} missing from {key} run "
                        "(filter too narrow?)")

    # One authoritative build-type field: cip_build_type, stamped by our own
    # binary from NDEBUG. google-benchmark's context also carries a
    # library_build_type describing how the *benchmark library* was built —
    # irrelevant to our kernels and confusing next to cip_build_type, so it
    # is deliberately not recorded. The bound GEMM ISA (and what CIP_ISA
    # requested) is recorded so every number names its microkernel.
    doc = {
        "schema": SCHEMA,
        "binary": str(args.binary),
        "host": {
            "cpu": platform.processor() or platform.machine(),
            "num_cpus": (context or {}).get("num_cpus"),
            "mhz_per_cpu": (context or {}).get("mhz_per_cpu"),
            "cip_build_type": build_type,
            "isa": (context or {}).get("cip_isa", "unknown"),
            "isa_request": (context or {}).get("cip_isa_request", "unknown"),
        },
        "runs": per_run,
        "speedups": compute_speedups(per_run),
    }
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"[bench_to_json] wrote {args.output}", file=sys.stderr)
    for pair, per_threads in doc["speedups"].items():
        print(f"[bench_to_json] speedup {pair}: {per_threads}",
              file=sys.stderr)

    if not args.no_gate:
        failures = []
        for pair, key, floor in SPEEDUP_GATES:
            got = doc["speedups"].get(pair, {}).get(key)
            if got is not None and got < floor:
                failures.append(f"{pair} at {key}: {got} < required {floor}")
        if doc["host"]["isa"] != "portable":
            for name, key, floor in SIMD_GMACS_GATES:
                got = per_run.get(key, {}).get(name, {}).get("gmacs_per_s")
                if got is not None and got < floor:
                    failures.append(
                        f"{name} at {key} (isa={doc['host']['isa']}): "
                        f"{got} GMAC/s < required {floor}")
        if failures:
            raise SystemExit("speedup gate FAILED:\n  " +
                             "\n  ".join(failures))
        print("[bench_to_json] speedup gates passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
