#!/usr/bin/env python3
"""Concurrency & determinism static analyzer for the cipfl codebase.

Complements tools/cip_lint.py (line-level style rules) with structural rules
that need function extents, parallel-region extents, and a call graph. Three
rule families (full catalog + rationale in docs/STATIC_ANALYSIS.md):

  parallel-region purity  (family `purity`)
    purity-tensor-mut     inside a lambda passed to ParallelFor /
                          ParallelForCoarse: calls that mutate a Tensor or
                          bump its version counter — non-const data()/flat(),
                          Fill/Zero/At, EnsureShape, move-assignment. The
                          version bump is unsynchronized by design (tensor.h),
                          so these are data races even when element writes are
                          disjoint. Hoist a raw pointer out of the region.
    purity-capture-write  writes to a by-reference-captured variable that is
                          neither region-local nor partitioned by an index
                          subscript (plain `x = ...`, `x += ...`, `++x`).
    purity-thread-prim    raw std::thread/std::jthread/std::mutex/lock
                          construction inside a region; all parallelism goes
                          through the worker pool.

  hot-path allocation audit  (family `hot-alloc`)
    Functions annotated with a preceding `// CIP_HOT` comment — and everything
    they transitively call, where the callee resolves unambiguously inside the
    repo — must not allocate:
    hot-alloc-new         new / new[]
    hot-alloc-malloc      malloc / calloc / realloc / strdup
    hot-alloc-tensor      constructing a Tensor (element-buffer allocation)
    hot-alloc-container   std::vector/std::string growth (push_back,
                          emplace_back, resize, reserve, assign, insert,
                          append) and sized container construction, plus
                          std::stack/queue push/emplace.
    This is the structural twin of tests/test_alloc_free.cpp: the test proves
    the property dynamically for specific shapes; the rule enforces it for
    every code path the annotated functions contain.

  determinism discipline  (family `determinism`)
    det-rand              std::rand / rand / srand (bit-identical rounds need
                          cip::Rng streams, never global C state)
    det-seed              seeding from the environment: time(nullptr/NULL/0),
                          std::random_device
    det-wallclock         wall-clock reads (steady_clock/system_clock/
                          high_resolution_clock ::now, gettimeofday, clock())
                          outside bench/ — telemetry call sites carry an
                          inline suppression with a written justification
    det-unordered-iter    range-for iteration over a std::unordered_map/set
                          declared in the same file: iteration order is
                          unspecified and must never feed serialized or
                          aggregated output

Suppressions: append `// CIP_ANALYZE_OK(<rule-or-family>): <justification>`
to the offending line, or put it alone on the line directly above. The
justification is mandatory; an empty one is itself an error
(`bad-suppression`). `// CIP_HOT` on its own line annotates the next function
definition as a hot root for the allocation audit.

Engines: by default the analyzer runs a heuristic engine (comment/string
stripping + function/region extent scanning). When the libclang Python
bindings are importable, `--engine auto` (the default) upgrades the purity
family's tensor-mutation and thread-primitive checks to AST-based detection,
reading compile flags from compile_commands.json (`-p <builddir>`); any
libclang failure falls back to the heuristic engine per file, so the gate
never depends on clang being installed. `--engine heuristic` forces the
fallback; `--engine libclang` errors out when the bindings are missing.

Scope: the tree scan covers src/**/*.{h,cpp}. tests/, bench/ and examples/
are exempt (benchmarks time things; tests construct threads to attack the
pool). The fixture corpus under tests/analyze_fixtures/ is analyzed only by
`--self-test`, which asserts every `// ANALYZE-EXPECT: <rule>` fixture is
flagged with exactly those rules and every `// ANALYZE-EXPECT: clean`
fixture produces no findings.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import bisect
import json
import pathlib
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Rule registry
# --------------------------------------------------------------------------

FAMILIES = ("purity", "hot-alloc", "determinism")

RULES = {
    "purity-tensor-mut": "purity",
    "purity-capture-write": "purity",
    "purity-thread-prim": "purity",
    "hot-alloc-new": "hot-alloc",
    "hot-alloc-malloc": "hot-alloc",
    "hot-alloc-tensor": "hot-alloc",
    "hot-alloc-container": "hot-alloc",
    "det-rand": "determinism",
    "det-seed": "determinism",
    "det-wallclock": "determinism",
    "det-unordered-iter": "determinism",
    # Meta-rule: a malformed or justification-free suppression comment.
    "bad-suppression": "determinism",
}


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    suppressed: bool = False

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Source model: comment/string stripping, annotations, suppressions
# --------------------------------------------------------------------------

RE_SUPPRESS = re.compile(r"CIP_ANALYZE_OK\(([\w-]+)\)\s*(?::\s*(.*?))?\s*$")
RE_HOT = re.compile(r"^\s*//\s*CIP_HOT\b")
RE_EXPECT = re.compile(r"//\s*ANALYZE-EXPECT:\s*(.+?)\s*$")


@dataclass
class SourceFile:
    """One parsed file: stripped text plus per-line annotation metadata."""

    rel: str
    raw: str
    stripped: str = ""
    line_starts: list[int] = field(default_factory=list)
    # line -> (rule-or-family token, justification or None)
    suppressions: dict[int, tuple[str, str | None]] = field(default_factory=dict)
    hot_lines: list[int] = field(default_factory=list)
    expects: list[str] = field(default_factory=list)

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)


def parse_source(rel: str, text: str) -> SourceFile:
    """Strip comments and string/char literals (preserving line structure) and
    harvest // CIP_HOT, // CIP_ANALYZE_OK(...) and // ANALYZE-EXPECT markers
    from the comment text."""
    sf = SourceFile(rel=rel, raw=text)
    out: list[str] = []
    i, n = 0, len(text)
    line = 1
    comment_buf: dict[int, list[str]] = {}

    def keep(ch: str) -> None:
        out.append(ch)

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comment_buf.setdefault(line, []).append(text[i:j])
            out.append(" " * (j - i))
            i = j
            continue
        if ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            block = text[i : j + 2]
            for k, part in enumerate(block.split("\n")):
                comment_buf.setdefault(line + k, []).append(part)
            for c in block:
                out.append("\n" if c == "\n" else " ")
            line += block.count("\n")
            i = j + 2
            continue
        if ch in "\"'":
            quote = ch
            keep(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if text[i] == "\n" else " ")
                if text[i] == "\n":
                    line += 1
                i += 1
            if i < n:
                keep(quote)
                i += 1
            continue
        keep(ch)
        if ch == "\n":
            line += 1
        i += 1

    sf.stripped = "".join(out)
    pos = 0
    sf.line_starts = []
    for ln in sf.stripped.split("\n"):
        sf.line_starts.append(pos)
        pos += len(ln) + 1
    # line_of: bisect_right over starts gives 1-based line numbers directly.

    raw_lines = text.split("\n")
    for ln_no, parts in comment_buf.items():
        for part in parts:
            m = RE_SUPPRESS.search(part)
            if m:
                just = m.group(2)
                sf.suppressions[ln_no] = (m.group(1), just if just else None)
            if RE_EXPECT.search(part):
                spec = RE_EXPECT.search(part).group(1)
                sf.expects.extend(s.strip() for s in spec.split(",") if s.strip())
    for ln_no, raw_line in enumerate(raw_lines, start=1):
        if RE_HOT.match(raw_line):
            sf.hot_lines.append(ln_no)
    return sf


# --------------------------------------------------------------------------
# Function extent scanner
# --------------------------------------------------------------------------

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "decltype", "static_assert", "defined", "assert",
    "new", "delete", "throw", "case",
}

RE_FUNC_SIG = re.compile(
    r"^(?:[\w:<>,*&~\[\]=\s.]|::)*?"
    r"(?P<name>~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*"
    r"\((?P<args>.*)\)\s*"
    r"(?:const\b|noexcept\b|final\b|override\b|mutable\b|"
    r"->\s*[\w:<>,*&\s]+|:\s*.*|\s)*$",
    re.S,
)


def _args_look_like_params(args: str) -> bool:
    """Reject call-expressions masquerading as definitions: every top-level
    comma chunk of a parameter list names a type (two tokens, or *, &, <>,
    ..., or is empty/void)."""
    depth = 0
    chunks, cur = [], []
    for ch in args:
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        if ch == "," and depth == 0:
            chunks.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    chunks.append("".join(cur))
    for c in chunks:
        c = c.strip()
        if c in ("", "void"):
            continue
        if any(t in c for t in ("*", "&", "<", "...", "=")):
            continue
        if len(c.split()) >= 2:
            continue
        return False
    return True


@dataclass
class Func:
    name: str            # last qualifier component, e.g. "ForwardGemm"
    qual: str            # as written, e.g. "Conv2d::ForwardGemm"
    rel: str
    sig_line: int
    body_start: int      # offset of '{' in stripped text
    body_end: int        # offset one past matching '}'
    body: str
    hot: bool = False


def _match_brace(text: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def scan_functions(sf: SourceFile) -> list[Func]:
    """Find function definitions by statement-chunk analysis: at every
    block-opening '{', the text since the previous ; { or } must parse as a
    signature. Detected bodies are skipped (C++ functions do not nest), so
    lambdas and statements inside bodies are never misread as definitions."""
    text = sf.stripped
    funcs: list[Func] = []
    i = 0
    chunk_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in ";}":
            chunk_start = i + 1
            i += 1
            continue
        if ch != "{":
            i += 1
            continue
        # Classify the brace: expression/init braces are skipped wholesale.
        k = i - 1
        while k >= 0 and text[k] in " \t\n":
            k -= 1
        prev = text[k] if k >= 0 else ""
        if prev in "(,=":
            i = _match_brace(text, i)
            continue
        chunk = text[chunk_start:i].strip()
        m = RE_FUNC_SIG.fullmatch(chunk) if chunk and "(" in chunk else None
        ok = False
        if m:
            name = re.sub(r"\s+", "", m.group("name"))
            last = name.split("::")[-1]
            if last not in KEYWORDS and "=" not in chunk.split(name)[0] \
                    and _args_look_like_params(m.group("args")):
                ok = True
        if ok:
            end = _match_brace(text, i)
            sig_line = sf.line_of(chunk_start + (len(text[chunk_start:i]) -
                                                 len(text[chunk_start:i].lstrip())))
            funcs.append(Func(name=last, qual=name, rel=sf.rel,
                              sig_line=sig_line, body_start=i, body_end=end,
                              body=text[i:end]))
            i = end
            chunk_start = i
            continue
        chunk_start = i + 1
        i += 1
    # Attach CIP_HOT annotations: the nearest following function within 6 lines.
    for hot_line in sf.hot_lines:
        best = None
        for f in funcs:
            if hot_line < f.sig_line <= hot_line + 6:
                if best is None or f.sig_line < best.sig_line:
                    best = f
        if best is not None:
            best.hot = True
    return funcs


# --------------------------------------------------------------------------
# Rule family 1: parallel-region purity
# --------------------------------------------------------------------------

RE_PARALLEL_CALL = re.compile(r"\bParallelFor(?:Coarse)?\s*\(")
RE_LAMBDA_INTRO = re.compile(r"\[(?P<cap>[^\[\]]*)\]\s*(?:\((?P<params>[^)]*)\))?\s*(?:mutable\s*)?(?:->\s*[\w:<>&*\s]+)?\s*\{")
RE_TENSOR_MUT = re.compile(
    r"(?P<recv>\w+)?\s*\.\s*(?:data|flat)\s*\(\s*\)|"
    r"\bEnsureShape\s*\(\s*(?P<earg>\w+)|"
    r"(?P<frecv>\w+)?\s*\.\s*(?:Fill\s*\(|Zero\s*\(\s*\))")
# Repo convention: `...Into(out)` functions mutate their out-params. Passing a
# member tensor (trailing underscore) by name into one from inside a region is
# exactly the shape of the PR 5 race — the version bump happens in the callee.
RE_INTO_CALL = re.compile(r"\b((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*Into)\s*\(")
RE_THREAD_PRIM = re.compile(
    r"\bstd::(?:jthread\b|thread\b(?!\s*::)|mutex\b|recursive_mutex\b|"
    r"lock_guard\b|unique_lock\b|scoped_lock\b|condition_variable\b)")
RE_MOVE_ASSIGN = re.compile(r"(\w+)\s*=\s*std::move\s*\(")
RE_LOCAL_DECL_TYPE = re.compile(
    r"^\s*(?:const\s+|constexpr\s+|static\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<[^<>;]*>)?(?:\s*[*&]+\s*|\s+)(?=[A-Za-z_])")
DECL_LINE_KEYWORDS = {
    "return", "throw", "delete", "new", "else", "case", "goto", "break",
    "continue", "if", "for", "while", "switch", "do",
}
RE_WRITE = re.compile(
    r"(?<![\w.\]\[>])(?P<name>[A-Za-z_]\w*)\s*"
    r"(?P<op>\+\+|--|(?:\+|-|\*|/|%|\||&|\^|<<|>>)?=(?!=))")
RE_PRE_INCR = re.compile(r"(?:\+\+|--)\s*(?P<name>[A-Za-z_]\w*)")


def _find_region_lambdas(body: str) -> list[tuple[int, str, str]]:
    """Return (offset-in-body, capture-list, lambda-body) for each lambda that
    is an argument of a ParallelFor/ParallelForCoarse call in `body`. A bare
    identifier argument is resolved against `auto NAME = [..](..){..}`
    definitions earlier in the same function body."""
    out = []
    for m in RE_PARALLEL_CALL.finditer(body):
        open_paren = m.end() - 1
        close = _match_paren(body, open_paren)
        args = body[open_paren + 1 : close - 1]
        lm = RE_LAMBDA_INTRO.search(args)
        if lm:
            lam_body_open = open_paren + 1 + lm.end() - 1
            lam_end = _match_brace(body, lam_body_open)
            out.append((lam_body_open, lm.group("cap"),
                        body[lam_body_open:lam_end]))
            continue
        # Named-lambda argument: ParallelForCoarse(0, n, run_block).
        for ident in re.findall(r"\b([A-Za-z_]\w*)\b", args):
            dm = re.search(
                r"\b" + re.escape(ident) + r"\s*=\s*\[(?P<cap>[^\[\]]*)\]"
                r"\s*(?:\([^)]*\))?\s*(?:mutable\s*)?\s*\{",
                body[: m.start()])
            if dm:
                lam_body_open = dm.end() - 1
                lam_end = _match_brace(body, lam_body_open)
                out.append((lam_body_open, dm.group("cap"),
                            body[lam_body_open:lam_end]))
                break
    return out


def _match_paren(text: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _local_names(region: str, params: str) -> set[str]:
    names = set(re.findall(r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$",
                           params.strip())) if params else set()
    for p in params.split(","):
        ids = re.findall(r"[A-Za-z_]\w*", p)
        if ids:
            names.add(ids[-1])
    for line in region.split("\n"):
        first = re.match(r"\s*([A-Za-z_]\w*)", line)
        if first and first.group(1) in DECL_LINE_KEYWORDS:
            continue
        m = RE_LOCAL_DECL_TYPE.match(line)
        if not m:
            continue
        for chunk in _split_top_commas(line[m.end():].rstrip().rstrip(";")):
            ids = re.findall(r"[A-Za-z_]\w*", chunk)
            if ids:
                names.add(ids[0])
    # for-loop induction variables: `for (type i = ...;`
    for m in re.finditer(r"\bfor\s*\(\s*(?:const\s+)?[\w:]+(?:\s*[*&]+\s*|\s+)"
                         r"(\w+)\s*[=:{]", region):
        names.add(m.group(1))
    return names


def _split_top_commas(s: str) -> list[str]:
    depth = 0
    out, cur = [], []
    for ch in s:
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    out.append("".join(cur))
    return out


def check_purity(sf: SourceFile, funcs: list[Func]) -> list[Finding]:
    out: list[Finding] = []
    for f in funcs:
        for off, cap, region in _find_region_lambdas(f.body):
            region_line = sf.line_of(f.body_start + off)
            params_m = RE_LAMBDA_INTRO.match(
                # Re-derive params from the intro preceding the body brace.
                f.body[max(0, off - 200) : off + 1].split("[")[-1].join(["[", ""]))
            # Simpler: pull params straight from the region context.
            pm = re.search(r"\]\s*\(([^)]*)\)\s*(?:mutable\s*)?\s*\{\Z",
                           f.body[max(0, off - 300) : off + 1], re.S)
            params = pm.group(1) if pm else ""
            locals_ = _local_names(region, params)
            by_ref = "&" in cap

            for m in RE_TENSOR_MUT.finditer(region):
                ctx = region[max(0, m.start() - 60) : m.start()]
                if "as_const" in ctx.rsplit(";", 1)[-1]:
                    continue
                recv = m.group("recv") or m.group("earg") or m.group("frecv")
                if recv is not None and recv in locals_:
                    continue  # mutating a region-local tensor is fine
                line = sf.line_of(f.body_start + off + m.start())
                out.append(Finding(sf.rel, line, "purity-tensor-mut",
                                   "potential Tensor mutation inside a "
                                   "parallel region (version-counter bump is "
                                   "an unsynchronized write — tensor.h); "
                                   "hoist a raw pointer out of the region"))
            for m in RE_INTO_CALL.finditer(region):
                close = _match_paren(region, m.end() - 1)
                for arg in _split_top_commas(region[m.end() : close - 1]):
                    a = arg.strip()
                    if re.fullmatch(r"(?:this->)?[A-Za-z]\w*_", a) \
                            and a not in locals_:
                        line = sf.line_of(f.body_start + off + m.start())
                        out.append(Finding(
                            sf.rel, line, "purity-tensor-mut",
                            f"member `{a}` passed by name into mutating "
                            f"`{m.group(1)}` inside a parallel region — the "
                            "callee's non-const access bumps the version "
                            "counter concurrently (the PR 5 race); use the "
                            "raw-pointer overload"))
            for m in RE_THREAD_PRIM.finditer(region):
                line = sf.line_of(f.body_start + off + m.start())
                out.append(Finding(sf.rel, line, "purity-thread-prim",
                                   "raw threading primitive constructed "
                                   "inside a parallel region; parallelism "
                                   "must go through the worker pool"))
            for m in RE_MOVE_ASSIGN.finditer(region):
                if m.group(1) not in locals_:
                    line = sf.line_of(f.body_start + off + m.start())
                    out.append(Finding(sf.rel, line, "purity-tensor-mut",
                                       f"move-assignment into captured "
                                       f"`{m.group(1)}` inside a parallel "
                                       "region (bumps version / races)"))
            if by_ref:
                for m in RE_WRITE.finditer(region):
                    name = m.group("name")
                    if name in locals_ or name in KEYWORDS:
                        continue
                    # Subscripted or member/pointer targets are partitioned
                    # per index by convention; plain scalars are not.
                    after = region[m.end() : m.end() + 2]
                    before = region[max(0, m.start() - 2) : m.start()]
                    if before.endswith((".", ">", "*")):
                        continue
                    tail = region[m.start() + len(name) :]
                    if tail.lstrip().startswith("["):
                        continue
                    if m.group("op") in ("++", "--") and not after:
                        continue
                    line = sf.line_of(f.body_start + off + m.start())
                    out.append(Finding(
                        sf.rel, line, "purity-capture-write",
                        f"write to by-reference capture `{name}` without a "
                        "per-index partition; use a per-chunk slot or an "
                        "atomic"))
                for m in RE_PRE_INCR.finditer(region):
                    name = m.group("name")
                    if name in locals_ or name in KEYWORDS:
                        continue
                    line = sf.line_of(f.body_start + off + m.start())
                    out.append(Finding(
                        sf.rel, line, "purity-capture-write",
                        f"increment of by-reference capture `{name}` without "
                        "a per-index partition"))
            _ = region_line, params_m  # keep line computation obvious
    return out


# --------------------------------------------------------------------------
# Rule family 2: hot-path allocation audit
# --------------------------------------------------------------------------

RE_ALLOC_NEW = re.compile(r"(?<![\w:])new\b(?!\s*\()")
RE_ALLOC_NEW_PLACEMENT = re.compile(r"(?<![\w:])new\s*\(")
RE_ALLOC_MALLOC = re.compile(r"(?<![\w:])(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\(")
RE_ALLOC_TENSOR = re.compile(
    r"(?:^|[^\w:])Tensor\s*(?:\(|\{(?!\s*\}))|"   # Tensor(...) / Tensor{...}
    r"(?:^|[^\w:])Tensor\s+\w+\s*[({]")           # Tensor y(...)
RE_ALLOC_GROWTH = re.compile(
    r"\.\s*(?:push_back|emplace_back|emplace|resize|reserve|assign|insert|"
    r"append|push)\s*\(")
RE_SIZED_CONTAINER = re.compile(
    r"\bstd::(?:vector|string|deque)\s*<[^;<>]*(?:<[^<>]*>)?[^;<>]*>\s+\w+\s*\(")
RE_CALL = re.compile(r"(?<![\w.:>])([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(")
RE_METHOD_CALL = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")

# Names never worth following (macros, checks, std-ish helpers).
CALL_SKIP = KEYWORDS | {
    "CIP_CHECK", "CIP_DCHECK", "EXPECT_EQ", "ASSERT_EQ",
}
# Follow a callee only when its name has at most this many definitions in the
# repo index: overloaded/virtual names (Forward, Backward, ...) are skipped —
# documented limitation; the per-layer CIP_HOT annotations cover the leaves.
MAX_DEFS_TO_FOLLOW = 2


def _body_calls(body: str) -> set[str]:
    calls: set[str] = set()
    for m in RE_CALL.finditer(body):
        name = m.group(1).split("::")[-1]
        if name in CALL_SKIP or name.isupper() or name.startswith("CIP_"):
            continue
        calls.add(name)
    for m in RE_METHOD_CALL.finditer(body):
        name = m.group(1)
        if name not in CALL_SKIP:
            calls.add(name)
    return calls


def check_hot_alloc(files: dict[str, SourceFile],
                    index: dict[str, list[Func]]) -> list[Finding]:
    by_name: dict[str, list[Func]] = {}
    for funcs in index.values():
        for f in funcs:
            by_name.setdefault(f.name, []).append(f)

    roots = [f for funcs in index.values() for f in funcs if f.hot]
    out: list[Finding] = []
    seen: set[tuple[str, str, int]] = set()
    # BFS over the resolvable call graph, keeping the annotation chain.
    work: list[tuple[Func, str]] = [(f, f.qual) for f in roots]
    visited: set[tuple[str, int]] = set()
    while work:
        f, chain = work.pop()
        key = (f.rel, f.body_start)
        if key in visited:
            continue
        visited.add(key)
        sf = files[f.rel]
        checks = (
            (RE_ALLOC_NEW, "hot-alloc-new", "operator new"),
            (RE_ALLOC_NEW_PLACEMENT, "hot-alloc-new", "operator new"),
            (RE_ALLOC_MALLOC, "hot-alloc-malloc", "C heap allocation"),
            (RE_ALLOC_TENSOR, "hot-alloc-tensor", "Tensor construction"),
            (RE_ALLOC_GROWTH, "hot-alloc-container", "container growth"),
            (RE_SIZED_CONTAINER, "hot-alloc-container",
             "sized container construction"),
        )
        for rx, rule, what in checks:
            for m in rx.finditer(f.body):
                line = sf.line_of(f.body_start + m.start())
                fkey = (f.rel, rule, line)
                if fkey in seen:
                    continue
                seen.add(fkey)
                out.append(Finding(
                    sf.rel, line, rule,
                    f"{what} on a CIP_HOT path (via {chain}); hot steady "
                    "state must reuse grow-once scratch"))
        for callee in sorted(_body_calls(f.body)):
            defs = by_name.get(callee, [])
            if 0 < len(defs) <= MAX_DEFS_TO_FOLLOW:
                for d in defs:
                    work.append((d, f"{chain} -> {d.qual}"))
    return out


# --------------------------------------------------------------------------
# Rule family 3: determinism discipline
# --------------------------------------------------------------------------

RE_DET_RAND = re.compile(r"(?<![\w:])s?rand\s*\(|\bstd::rand\b")
RE_DET_SEED = re.compile(
    r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|\bstd::random_device\b")
RE_DET_WALLCLOCK = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(|"
    r"\bgettimeofday\s*\(|(?<![\w:.])clock\s*\(\s*\)")
RE_UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*[&*]?\s*(\w+)")


def check_determinism(sf: SourceFile) -> list[Finding]:
    out: list[Finding] = []
    text = sf.stripped
    for rx, rule, msg in (
        (RE_DET_RAND, "det-rand",
         "rand()/srand() is banned; use cip::Rng streams"),
        (RE_DET_SEED, "det-seed",
         "environment-derived seeding (time/random_device) breaks "
         "reproducibility; derive from an explicit seed"),
        (RE_DET_WALLCLOCK, "det-wallclock",
         "wall-clock read outside bench/; if this is telemetry, add "
         "CIP_ANALYZE_OK(det-wallclock) with a justification"),
    ):
        for m in rx.finditer(text):
            out.append(Finding(sf.rel, sf.line_of(m.start()), rule, msg))
    # Wall-clock reads through a type alias (`using Clock = std::chrono::
    # steady_clock; ... Clock::now()`) must not dodge the rule.
    aliases = re.findall(
        r"\busing\s+(\w+)\s*=\s*std::chrono::"
        r"(?:steady_clock|system_clock|high_resolution_clock)\s*;", text)
    for alias in set(aliases):
        for m in re.finditer(r"\b" + re.escape(alias) + r"\s*::\s*now\s*\(",
                             text):
            out.append(Finding(
                sf.rel, sf.line_of(m.start()), "det-wallclock",
                f"wall-clock read via alias `{alias}` outside bench/; if "
                "this is telemetry, add CIP_ANALYZE_OK(det-wallclock) with "
                "a justification"))
    unordered = set(RE_UNORDERED_DECL.findall(text))
    if unordered:
        for m in re.finditer(r"\bfor\s*\([^;)]*:\s*(\w+)\s*\)", text):
            if m.group(1) in unordered:
                out.append(Finding(
                    sf.rel, sf.line_of(m.start()), "det-unordered-iter",
                    f"iteration over unordered container `{m.group(1)}`: "
                    "order is unspecified and must not feed serialized or "
                    "aggregated output; use an ordered container or sort "
                    "keys first"))
    return out


# --------------------------------------------------------------------------
# Optional libclang engine (purity refinement)
# --------------------------------------------------------------------------


class ClangEngine:
    """Best-effort AST refinement of the purity family. Never required: any
    failure (missing bindings, unparseable TU, missing compile flags) falls
    back to the heuristic checks for that file."""

    TENSOR_MUTATORS = {"data", "flat", "Fill", "Zero", "At", "operator[]",
                       "operator="}
    THREAD_TYPES = {"thread", "jthread", "mutex", "recursive_mutex",
                    "lock_guard", "unique_lock", "scoped_lock",
                    "condition_variable"}

    def __init__(self, build_dir: pathlib.Path | None):
        import clang.cindex as cindex  # may raise ImportError

        self.cindex = cindex
        self.index = cindex.Index.create()
        self.flags: dict[str, list[str]] = {}
        if build_dir is not None:
            cc = build_dir / "compile_commands.json"
            if cc.is_file():
                for entry in json.loads(cc.read_text(encoding="utf-8")):
                    args = entry.get("command", "").split()[1:]
                    args = [a for a in args if not a.endswith(".cpp")
                            and a not in ("-c", "-o")]
                    self.flags[str(pathlib.Path(entry["file"]).resolve())] = args

    def check_purity(self, root: pathlib.Path,
                     sf: SourceFile) -> list[Finding] | None:
        ci = self.cindex
        path = root / sf.rel
        args = self.flags.get(str(path.resolve()),
                              ["-std=c++20", f"-I{root / 'src'}"])
        try:
            tu = self.index.parse(str(path), args=args)
        except Exception:
            return None
        if any(d.severity >= ci.Diagnostic.Fatal for d in tu.diagnostics):
            return None
        out: list[Finding] = []

        def lambdas_of_parallel_calls(node):
            if node.kind == ci.CursorKind.CALL_EXPR and node.spelling in (
                    "ParallelFor", "ParallelForCoarse"):
                for child in node.walk_preorder():
                    if child.kind == ci.CursorKind.LAMBDA_EXPR:
                        yield child
            for c in node.get_children():
                if c.location.file and c.location.file.name == str(path):
                    yield from lambdas_of_parallel_calls(c)

        for lam in lambdas_of_parallel_calls(tu.cursor):
            for node in lam.walk_preorder():
                if node.kind == ci.CursorKind.CALL_EXPR:
                    ref = node.referenced
                    if (ref is not None
                            and ref.spelling in self.TENSOR_MUTATORS
                            and ref.semantic_parent is not None
                            and ref.semantic_parent.spelling == "Tensor"
                            and not ref.is_const_method()):
                        out.append(Finding(
                            sf.rel, node.location.line, "purity-tensor-mut",
                            f"non-const Tensor::{ref.spelling}() inside a "
                            "parallel region (AST-verified); hoist a raw "
                            "pointer out of the region"))
                if node.kind == ci.CursorKind.VAR_DECL and node.type is not None:
                    base = node.type.spelling.split("<")[0].split("::")[-1]
                    if base.strip() in self.THREAD_TYPES:
                        out.append(Finding(
                            sf.rel, node.location.line, "purity-thread-prim",
                            f"std::{base.strip()} constructed inside a "
                            "parallel region (AST-verified)"))
        return out


def make_clang_engine(engine: str,
                      build_dir: pathlib.Path | None) -> ClangEngine | None:
    if engine == "heuristic":
        return None
    try:
        return ClangEngine(build_dir)
    except Exception as e:
        if engine == "libclang":
            print(f"cip_analyze: libclang engine unavailable: {e}",
                  file=sys.stderr)
            sys.exit(2)
        return None


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def analyze_file(root: pathlib.Path, sf: SourceFile,
                 clang_engine: ClangEngine | None,
                 families: set[str]) -> list[Finding]:
    funcs = scan_functions(sf)
    findings: list[Finding] = []
    if "purity" in families:
        ast = None
        if clang_engine is not None:
            ast = clang_engine.check_purity(root, sf)
        if ast is not None:
            findings += ast
            # Capture-write analysis stays heuristic even under the AST
            # engine (flow analysis is out of scope); run it alone.
            findings += [f for f in check_purity(sf, funcs)
                         if f.rule == "purity-capture-write"]
        else:
            findings += check_purity(sf, funcs)
    if "determinism" in families:
        findings += check_determinism(sf)
    return findings


def apply_suppressions(sf: SourceFile,
                       findings: list[Finding]) -> list[Finding]:
    """Drop findings covered by a CIP_ANALYZE_OK on the same or previous
    line; emit bad-suppression for justification-free markers."""
    out = []
    for fnd in findings:
        for ln in (fnd.line, fnd.line - 1):
            sup = sf.suppressions.get(ln)
            if sup is None:
                continue
            token, just = sup
            if token == fnd.rule or token == RULES.get(fnd.rule):
                if just:
                    fnd.suppressed = True
                break
        out.append(fnd)
    for ln, (token, just) in sf.suppressions.items():
        if token not in RULES and token not in FAMILIES:
            out.append(Finding(sf.rel, ln, "bad-suppression",
                               f"unknown rule `{token}` in CIP_ANALYZE_OK"))
        elif not just:
            out.append(Finding(sf.rel, ln, "bad-suppression",
                               "CIP_ANALYZE_OK without a justification — "
                               "write why the finding is safe"))
    return out


def collect_sources(root: pathlib.Path,
                    subdirs: tuple[str, ...]) -> dict[str, SourceFile]:
    files: dict[str, SourceFile] = {}
    for d in subdirs:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cpp") or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            files[rel] = parse_source(rel, path.read_text(encoding="utf-8"))
    return files


def run_scan(root: pathlib.Path, build_dir: pathlib.Path | None,
             engine: str, subdirs: tuple[str, ...] = ("src",),
             families: set[str] | None = None) -> list[Finding]:
    families = families or set(FAMILIES)
    files = collect_sources(root, subdirs)
    clang_engine = make_clang_engine(engine, build_dir)
    findings: list[Finding] = []
    index = {rel: scan_functions(sf) for rel, sf in files.items()}
    for rel, sf in files.items():
        findings += apply_suppressions(
            sf, analyze_file(root, sf, clang_engine, families))
    if "hot-alloc" in families:
        hot = check_hot_alloc(files, index)
        grouped: dict[str, list[Finding]] = {}
        for f in hot:
            grouped.setdefault(f.path, []).append(f)
        for rel, fs in grouped.items():
            findings += [f for f in apply_suppressions(files[rel], fs)
                         if f.rule != "bad-suppression"]  # already reported
    # bad-suppression findings can be duplicated by the two passes; dedup.
    uniq: dict[tuple[str, int, str], Finding] = {}
    for f in findings:
        uniq.setdefault((f.path, f.line, f.rule), f)
    return sorted(uniq.values(), key=lambda f: (f.path, f.line, f.rule))


def print_summary(findings: list[Finding]) -> None:
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    counts: dict[str, list[int]] = {}
    for f in findings:
        slot = counts.setdefault(f.rule, [0, 0])
        slot[1 if f.suppressed else 0] += 1
    print("cip_analyze: per-rule summary")
    for rule in sorted(RULES):
        hit, sup = counts.get(rule, [0, 0])
        marker = "  " if hit == 0 else "!!"
        print(f"  {marker} {rule:<24} findings={hit:<3} suppressed={sup}")
    print(f"cip_analyze: {len(active)} finding(s), "
          f"{len(suppressed)} suppressed")


# --------------------------------------------------------------------------
# Self-test over the fixture corpus
# --------------------------------------------------------------------------


def self_test(root: pathlib.Path, engine: str) -> int:
    fixtures = root / "tests" / "analyze_fixtures"
    if not fixtures.is_dir():
        print(f"cip_analyze: fixture corpus missing at {fixtures}",
              file=sys.stderr)
        return 2
    ok = True
    n_files = 0
    clang_engine = make_clang_engine(engine, None)
    for path in sorted(fixtures.rglob("*.cpp")) + sorted(fixtures.rglob("*.h")):
        rel = path.relative_to(root).as_posix()
        sf = parse_source(rel, path.read_text(encoding="utf-8"))
        if not sf.expects:
            print(f"self-test FAIL: {rel} has no ANALYZE-EXPECT header")
            ok = False
            continue
        n_files += 1
        findings = apply_suppressions(
            sf, analyze_file(root, sf, clang_engine, set(FAMILIES)))
        funcs = scan_functions(sf)
        hot = check_hot_alloc({rel: sf}, {rel: funcs})
        findings += apply_suppressions(sf, hot)
        active_rules = {f.rule for f in findings if not f.suppressed}
        if sf.expects == ["clean"]:
            if active_rules:
                details = "; ".join(str(f) for f in findings if not f.suppressed)
                print(f"self-test FAIL: {rel} expected clean, got: {details}")
                ok = False
            continue
        for expected in sf.expects:
            if expected not in RULES:
                print(f"self-test FAIL: {rel} expects unknown rule "
                      f"`{expected}`")
                ok = False
            elif expected not in active_rules:
                print(f"self-test FAIL: {rel} expected rule `{expected}` "
                      f"to fire; got {sorted(active_rules) or 'nothing'}")
                ok = False
    print(f"self-test {'OK' if ok else 'FAILED'} ({n_files} fixtures)")
    return 0 if ok else 1


# --------------------------------------------------------------------------
# Header self-containment coverage audit (see CMakeLists.txt)
# --------------------------------------------------------------------------


def check_header_coverage(root: pathlib.Path, tu_dir: pathlib.Path) -> int:
    """Every src/**/*.h must have a generated self-containment TU. The CMake
    glob uses CONFIGURE_DEPENDS, which is best-effort per generator; this is
    the tripwire that makes a stale configure fail loudly."""
    missing = []
    for path in sorted((root / "src").rglob("*.h")):
        rel = path.relative_to(root / "src").as_posix()
        mangled = rel.replace("/", "_")[: -len(".h")] + ".cpp"
        if not (tu_dir / mangled).is_file():
            missing.append(rel)
    if missing:
        for rel in missing:
            print(f"header-coverage: src/{rel} has no self-containment TU "
                  f"under {tu_dir} — re-run cmake configure")
        return 1
    print(f"header-coverage: all src headers tracked ({tu_dir})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("-p", "--build-dir", type=pathlib.Path, default=None,
                        help="build dir holding compile_commands.json "
                             "(libclang engine flag source)")
    parser.add_argument("--engine", choices=("auto", "heuristic", "libclang"),
                        default="auto")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every fixture under "
                             "tests/analyze_fixtures matches its "
                             "ANALYZE-EXPECT header")
    parser.add_argument("--header-coverage", type=pathlib.Path, default=None,
                        metavar="TU_DIR",
                        help="audit that every src header has a generated "
                             "self-containment TU in TU_DIR, then exit")
    args = parser.parse_args()

    root = args.root.resolve()
    if args.header_coverage is not None:
        return check_header_coverage(root, args.header_coverage.resolve())
    if args.self_test:
        return self_test(root, args.engine)
    if not (root / "src").is_dir():
        print(f"cip_analyze: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    findings = run_scan(root, args.build_dir, args.engine)
    for f in findings:
        if not f.suppressed:
            print(f)
    print_summary(findings)
    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
